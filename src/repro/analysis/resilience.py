"""Degradation-under-faults reports: goodput, MTTR, accuracy deltas.

The fault-injection subsystem (:mod:`repro.sim.faults` +
:mod:`repro.resilience`) answers "what breaks"; this module answers "how
much it cost".  Three reports over one faulty run's
:class:`~repro.resilience.stats.ResilienceStats` (and optionally its
fault-free twin):

* :func:`resilience_summary` / :func:`render_resilience_summary` — the
  run-level scorecard: exchange goodput (completed / attempted), retry /
  abort / timeout counts, crash count, mean MTTR and mean restored-state
  staleness;
* :func:`worker_resilience_table` / :func:`render_worker_resilience` —
  per-worker crash counts, downtime seconds, MTTR and availability over
  the run horizon;
* :func:`degradation_report` / :func:`render_degradation` — the faulty
  run against its no-fault baseline on the same config + seed: final /
  best accuracy deltas and the time-to-target-accuracy slip, i.e. the
  accuracy-under-faults curve collapsed to the numbers the robustness
  experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.analysis.timeline import time_to_accuracy


@dataclass
class ResilienceSummary:
    """Run-level scorecard of one faulty run."""

    attempted_exchanges: int
    completed_exchanges: int
    aborted_exchanges: int
    timeout_exchanges: int
    lost_exchanges: int
    retries: int
    give_ups: int
    goodput: float
    crashes: int
    recoveries: int
    mean_mttr_s: Optional[float]
    mean_restore_staleness_s: Optional[float]


@dataclass
class WorkerResilience:
    """One worker's availability over the run horizon."""

    worker: int
    crashes: int
    downtime_s: float
    mttr_s: Optional[float]
    availability: float


@dataclass
class Degradation:
    """Faulty run vs. its fault-free twin (same config + seed)."""

    final_accuracy: float
    baseline_final_accuracy: float
    final_accuracy_delta: float
    best_accuracy: float
    baseline_best_accuracy: float
    target_accuracy: Optional[float]
    time_to_target_s: Optional[float]
    baseline_time_to_target_s: Optional[float]
    #: Positive = the faults delayed reaching the target by this much;
    #: None when either run never reached it.
    time_to_target_slip_s: Optional[float]


def resilience_summary(stats) -> ResilienceSummary:
    """Collapse one run's :class:`ResilienceStats` into the scorecard."""
    return ResilienceSummary(
        attempted_exchanges=stats.attempted_exchanges,
        completed_exchanges=stats.completed_exchanges,
        aborted_exchanges=stats.aborted_exchanges,
        timeout_exchanges=stats.timeout_exchanges,
        lost_exchanges=stats.lost_exchanges,
        retries=stats.retries,
        give_ups=stats.give_ups,
        goodput=stats.goodput,
        crashes=len(stats.crashes),
        recoveries=len(stats.recoveries),
        mean_mttr_s=stats.mean_mttr(),
        mean_restore_staleness_s=stats.mean_restore_staleness(),
    )


def render_resilience_summary(summary: ResilienceSummary) -> str:
    rows = [
        ["exchange goodput", f"{100 * summary.goodput:.1f}%"],
        ["attempted exchanges", summary.attempted_exchanges],
        ["completed exchanges", summary.completed_exchanges],
        ["aborted (crash/link)", summary.aborted_exchanges],
        ["deadline timeouts", summary.timeout_exchanges],
        ["lost in transit", summary.lost_exchanges],
        ["backoff retries", summary.retries],
        ["give-ups (re-match)", summary.give_ups],
        ["crashes", summary.crashes],
        ["recoveries", summary.recoveries],
        [
            "mean MTTR [s]",
            None if summary.mean_mttr_s is None else round(summary.mean_mttr_s, 3),
        ],
        [
            "mean restore staleness [s]",
            None
            if summary.mean_restore_staleness_s is None
            else round(summary.mean_restore_staleness_s, 3),
        ],
    ]
    return render_table(["metric", "value"], rows, title="Resilience summary")


def worker_resilience_table(stats, horizon: float) -> List[WorkerResilience]:
    """Per-worker availability over ``horizon`` simulated seconds."""
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    crash_counts = [0] * stats.num_workers
    for worker, _ in stats.crashes:
        crash_counts[worker] += 1
    rows = []
    for worker in range(stats.num_workers):
        down = stats.worker_downtime_seconds(worker)
        rows.append(
            WorkerResilience(
                worker=worker,
                crashes=crash_counts[worker],
                downtime_s=down,
                mttr_s=stats.worker_mttr(worker),
                availability=max(0.0, 1.0 - down / horizon),
            )
        )
    return rows


def render_worker_resilience(rows: List[WorkerResilience]) -> str:
    if not rows:
        raise ValueError("rows must not be empty")
    table = [
        [
            row.worker,
            row.crashes,
            round(row.downtime_s, 3),
            None if row.mttr_s is None else round(row.mttr_s, 3),
            f"{100 * row.availability:.1f}%",
        ]
        for row in rows
    ]
    return render_table(
        ["worker", "crashes", "downtime [s]", "MTTR [s]", "availability"],
        table,
        title="Per-worker fault exposure",
    )


def degradation_report(
    faulty_result, baseline_result, target_accuracy: Optional[float] = None
) -> Degradation:
    """Quantify what the faults cost against the fault-free twin run.

    Both results must come from the same config + seed (the no-fault
    run is bit-identical to a run with no fault plan at all, so any
    pre-existing baseline works).  ``target_accuracy`` additionally
    reports the time-to-target slip on the simulated-time axis.
    """
    time_to = baseline_time_to = slip = None
    if target_accuracy is not None:
        time_to = time_to_accuracy(faulty_result, target_accuracy)
        baseline_time_to = time_to_accuracy(baseline_result, target_accuracy)
        if time_to is not None and baseline_time_to is not None:
            slip = time_to - baseline_time_to
    return Degradation(
        final_accuracy=faulty_result.final_accuracy,
        baseline_final_accuracy=baseline_result.final_accuracy,
        final_accuracy_delta=(
            faulty_result.final_accuracy - baseline_result.final_accuracy
        ),
        best_accuracy=faulty_result.best_accuracy,
        baseline_best_accuracy=baseline_result.best_accuracy,
        target_accuracy=target_accuracy,
        time_to_target_s=time_to,
        baseline_time_to_target_s=baseline_time_to,
        time_to_target_slip_s=slip,
    )


def render_degradation(report: Degradation) -> str:
    rows = [
        ["final accuracy (faulty)", f"{100 * report.final_accuracy:.2f}%"],
        [
            "final accuracy (no faults)",
            f"{100 * report.baseline_final_accuracy:.2f}%",
        ],
        ["final accuracy delta", f"{100 * report.final_accuracy_delta:+.2f}pp"],
        ["best accuracy (faulty)", f"{100 * report.best_accuracy:.2f}%"],
        [
            "best accuracy (no faults)",
            f"{100 * report.baseline_best_accuracy:.2f}%",
        ],
    ]
    if report.target_accuracy is not None:
        rows.extend(
            [
                [
                    f"time to {100 * report.target_accuracy:.0f}% (faulty)",
                    None
                    if report.time_to_target_s is None
                    else round(report.time_to_target_s, 3),
                ],
                [
                    f"time to {100 * report.target_accuracy:.0f}% (no faults)",
                    None
                    if report.baseline_time_to_target_s is None
                    else round(report.baseline_time_to_target_s, 3),
                ],
                [
                    "time-to-target slip [s]",
                    None
                    if report.time_to_target_slip_s is None
                    else round(report.time_to_target_slip_s, 3),
                ],
            ]
        )
    return render_table(
        ["metric", "value"], rows, title="Degradation under faults"
    )
