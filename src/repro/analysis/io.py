"""Persist experiment results to JSON and load them back.

The benchmark harness and CLI write trajectories to disk so runs can be
compared across configurations/machines without rerunning the simulator.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Union

from repro.sim.engine import ExperimentConfig, ExperimentResult, RoundRecord

FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable dict of one trajectory."""
    return {
        "format_version": FORMAT_VERSION,
        "algorithm": result.algorithm,
        "config": asdict(result.config),
        "history": [asdict(record) for record in result.history],
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict` (validates the format version)."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    result = ExperimentResult(
        algorithm=payload["algorithm"],
        config=ExperimentConfig(**payload["config"]),
    )
    result.history = [RoundRecord(**record) for record in payload["history"]]
    return result


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write one trajectory as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read one trajectory back."""
    return result_from_dict(json.loads(Path(path).read_text()))


def save_comparison(
    results: Dict[str, ExperimentResult], path: Union[str, Path]
) -> Path:
    """Write a {algorithm: trajectory} mapping as one JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "results": {name: result_to_dict(r) for name, r in results.items()},
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_comparison(path: Union[str, Path]) -> Dict[str, ExperimentResult]:
    """Inverse of :func:`save_comparison`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported comparison format version")
    return {
        name: result_from_dict(entry)
        for name, entry in payload["results"].items()
    }
