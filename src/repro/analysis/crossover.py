"""Crossover analysis of accuracy-vs-cost curves.

The reproduction question for Figs. 4/6 is not only "who wins" but
"*where* the curves cross".  Given two trajectories this module finds the
cost at which one algorithm's accuracy overtakes the other's, using
monotone step interpolation of accuracy-at-cost (accuracy at a budget =
best accuracy recorded at or under that cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import ExperimentResult


def accuracy_at_cost(
    result: ExperimentResult, budget: float, cost_attr: str = "worker_traffic_mb"
) -> Optional[float]:
    """Best validation accuracy achieved within a cost budget, or None if
    even the first snapshot exceeds the budget."""
    best: Optional[float] = None
    for record in result.history:
        if getattr(record, cost_attr) <= budget:
            value = record.val_accuracy
            best = value if best is None else max(best, value)
    return best


@dataclass
class Crossover:
    """The budget at which ``winner_after`` overtakes ``winner_before``."""

    cost: float
    winner_before: str
    winner_after: str


def find_crossovers(
    result_a: ExperimentResult,
    result_b: ExperimentResult,
    cost_attr: str = "worker_traffic_mb",
    resolution: int = 200,
) -> List[Crossover]:
    """Crossover budgets between two trajectories.

    Scans a log-spaced cost grid covering both trajectories and reports
    each budget where the leader (by accuracy-at-cost) changes.  An
    algorithm with no snapshot under the budget counts as accuracy 0.
    """
    costs = [
        getattr(record, cost_attr)
        for result in (result_a, result_b)
        for record in result.history
        if getattr(record, cost_attr) > 0
    ]
    if not costs:
        return []
    low, high = min(costs), max(costs)
    if low == high:
        grid = np.array([low])
    else:
        grid = np.logspace(np.log10(low), np.log10(high), resolution)

    crossovers: List[Crossover] = []
    previous_leader: Optional[str] = None
    for budget in grid:
        acc_a = accuracy_at_cost(result_a, budget, cost_attr) or 0.0
        acc_b = accuracy_at_cost(result_b, budget, cost_attr) or 0.0
        if acc_a == acc_b:
            continue
        leader = result_a.algorithm if acc_a > acc_b else result_b.algorithm
        if previous_leader is not None and leader != previous_leader:
            crossovers.append(
                Crossover(
                    cost=float(budget),
                    winner_before=previous_leader,
                    winner_after=leader,
                )
            )
        previous_leader = leader
    return crossovers


def dominance_summary(
    results: Dict[str, ExperimentResult],
    cost_attr: str = "worker_traffic_mb",
    resolution: int = 100,
) -> Dict[str, float]:
    """Fraction of the (log-spaced) budget range each algorithm leads.

    A value of 1.0 for SAPS-PSGD means it dominates the whole frontier —
    the strongest form of the paper's Fig. 4 claim.
    """
    costs = [
        getattr(record, cost_attr)
        for result in results.values()
        for record in result.history
        if getattr(record, cost_attr) > 0
    ]
    if not costs:
        return {name: 0.0 for name in results}
    low, high = min(costs), max(costs)
    grid = (
        np.logspace(np.log10(low), np.log10(high), resolution)
        if low < high
        else np.array([low])
    )
    wins = {name: 0 for name in results}
    decided = 0
    for budget in grid:
        scored = {
            name: accuracy_at_cost(result, budget, cost_attr) or 0.0
            for name, result in results.items()
        }
        best = max(scored.values())
        if best <= 0:
            continue
        leaders = [name for name, value in scored.items() if value == best]
        decided += 1
        for name in leaders:
            wins[name] += 1 / len(leaders)
    if decided == 0:
        return {name: 0.0 for name in results}
    return {name: wins[name] / decided for name in results}
