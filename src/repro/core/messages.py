"""Typed coordinator↔worker messages and an in-memory message bus.

The paper's Fig. 2 distinguishes "status communication (small message)"
between the coordinator and workers from "model communication (large
message)" between peers.  This module makes the status plane explicit:

* message dataclasses for every exchange in Algorithms 1-2
  (:class:`TrainTask`, :class:`RoundStart`, :class:`RoundEnd`,
  :class:`ModelUpload`);
* :class:`MessageBus` — an in-memory, per-recipient FIFO with byte
  accounting, so the coordinator's claimed "lightweight" role is
  *measurable*: status traffic is a few tens of bytes per worker per
  round versus ``N/c`` values of model traffic;
* :class:`MessagingCoordinator` — the Algorithm 1 loop driven entirely
  through the bus (used by the protocol tests and the architecture
  example).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.protocol import Coordinator, RoundPlan

#: Address of the coordinator on the bus.
COORDINATOR = -1


@dataclass(frozen=True)
class Message:
    """Base message: sender/recipient addresses (worker rank or
    :data:`COORDINATOR`)."""

    sender: int
    recipient: int

    def num_bytes(self) -> int:
        """Approximate wire size (used for status-plane accounting)."""
        return 8  # two 4-byte addresses


@dataclass(frozen=True)
class TrainTask(Message):
    """Coordinator → worker, once at startup: the training task
    (Algorithm 1, 'distributes the task to all the connected workers')."""

    net_name: str = ""
    total_rounds: int = 0

    def num_bytes(self) -> int:
        return super().num_bytes() + len(self.net_name.encode()) + 4


@dataclass(frozen=True)
class RoundStart(Message):
    """Coordinator → worker, per round: ``(W_t[rank], t, s)``.

    Only the worker's own partner is sent (the row of ``W_t`` it needs),
    keeping the message O(1).
    """

    round_index: int = 0
    partner: int = -1
    mask_seed: int = 0

    def num_bytes(self) -> int:
        return super().num_bytes() + 4 + 4 + 8


@dataclass(frozen=True)
class RoundEnd(Message):
    """Worker → coordinator: "ROUND END" (Algorithm 2, line 11)."""

    round_index: int = 0

    def num_bytes(self) -> int:
        return super().num_bytes() + 4


@dataclass(frozen=True)
class ModelUpload(Message):
    """Worker → coordinator, once at the very end: the full final model
    (Algorithm 1, line 8)."""

    model: Optional[np.ndarray] = None

    def num_bytes(self) -> int:
        size = 0 if self.model is None else self.model.size * 4
        return super().num_bytes() + size


class MessageBus:
    """Per-recipient FIFO queues with byte accounting."""

    def __init__(self) -> None:
        self._queues: Dict[int, Deque[Message]] = defaultdict(deque)
        self.status_bytes = 0
        self.model_bytes = 0
        self.delivered = 0

    def send(self, message: Message) -> None:
        self._queues[message.recipient].append(message)
        if isinstance(message, ModelUpload):
            self.model_bytes += message.num_bytes()
        else:
            self.status_bytes += message.num_bytes()
        self.delivered += 1

    def receive(self, recipient: int) -> Optional[Message]:
        """Pop the next message for ``recipient`` (None if empty)."""
        queue = self._queues[recipient]
        return queue.popleft() if queue else None

    def receive_all(self, recipient: int) -> List[Message]:
        messages = list(self._queues[recipient])
        self._queues[recipient].clear()
        return messages

    def pending(self, recipient: int) -> int:
        return len(self._queues[recipient])


class MessagingCoordinator:
    """Algorithm 1 driven over a :class:`MessageBus`.

    Wraps the planning :class:`~repro.core.protocol.Coordinator` and
    turns its plans into per-worker :class:`RoundStart` messages, then
    waits for :class:`RoundEnd` replies.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        bus: MessageBus,
        net_name: str = "model",
        total_rounds: int = 0,
    ) -> None:
        self.coordinator = coordinator
        self.bus = bus
        self.net_name = net_name
        self.total_rounds = total_rounds
        self.final_model: Optional[np.ndarray] = None

    @property
    def num_workers(self) -> int:
        return self.coordinator.num_workers

    def announce_task(self) -> None:
        """Startup broadcast of the training task."""
        for rank in range(self.num_workers):
            self.bus.send(
                TrainTask(
                    sender=COORDINATOR,
                    recipient=rank,
                    net_name=self.net_name,
                    total_rounds=self.total_rounds,
                )
            )

    def start_round(
        self, round_index: int, active: Optional[np.ndarray] = None
    ) -> RoundPlan:
        """Plan the round and message every participating worker."""
        plan = self.coordinator.plan_round(round_index, active=active)
        for rank in range(self.num_workers):
            if active is not None and not active[rank]:
                continue
            self.bus.send(
                RoundStart(
                    sender=COORDINATOR,
                    recipient=rank,
                    round_index=round_index,
                    partner=int(plan.partners[rank]),
                    mask_seed=plan.mask_seed,
                )
            )
        return plan

    def drain_round_ends(self) -> int:
        """Consume RoundEnd messages; returns how many arrived."""
        count = 0
        for message in self.bus.receive_all(COORDINATOR):
            if isinstance(message, RoundEnd):
                self.coordinator.notify_round_end(message.sender)
                count += 1
            elif isinstance(message, ModelUpload):
                self.coordinator.collect_model(message.model)
                self.final_model = self.coordinator.final_model
        return count

    def round_complete(self) -> bool:
        return self.coordinator.round_complete()
