"""The paper's primary contribution: SAPS-PSGD core components.

* :mod:`repro.core.matching` — blossom maximum matching and the paper's
  ``RandomlyMaxMatch``.
* :mod:`repro.core.gossip` — Algorithm 3 (adaptive peer selection) and
  gossip-matrix construction.
* :mod:`repro.core.protocol` — Algorithm 1 (Coordinator) and Algorithm 2's
  sparsified model exchange.

The end-to-end training algorithm built on these lives in
:class:`repro.algorithms.SAPSPSGD`.
"""

from repro.core.matching import (
    Matching,
    greedy_weighted_matching,
    is_valid_matching,
    matching_to_partner_array,
    max_cardinality_matching,
    randomly_max_match,
)
from repro.core.gossip import (
    AdaptivePeerSelector,
    FixedRingSelector,
    PeerSelectionResult,
    RandomPeerSelector,
    gossip_matrix_from_matching,
    ring_gossip_matrix,
)
from repro.core.protocol import (
    Coordinator,
    ModelExchangeWorker,
    RoundPlan,
    exchange_pair,
)
from repro.core.multipeer import (
    MultiPeerSelector,
    gossip_from_neighbor_sets,
    neighbor_sets_from_matchings,
    union_of_matchings,
)
from repro.core.ring_opt import (
    best_bottleneck_matching,
    best_bottleneck_ring,
    greedy_ring,
    ring_bottleneck,
    two_opt_ring,
)
from repro.core.messages import (
    COORDINATOR,
    Message,
    MessageBus,
    MessagingCoordinator,
    ModelUpload,
    RoundEnd,
    RoundStart,
    TrainTask,
)

__all__ = [
    "Matching",
    "max_cardinality_matching",
    "randomly_max_match",
    "greedy_weighted_matching",
    "is_valid_matching",
    "matching_to_partner_array",
    "AdaptivePeerSelector",
    "RandomPeerSelector",
    "FixedRingSelector",
    "PeerSelectionResult",
    "gossip_matrix_from_matching",
    "ring_gossip_matrix",
    "Coordinator",
    "ModelExchangeWorker",
    "RoundPlan",
    "exchange_pair",
    "MultiPeerSelector",
    "union_of_matchings",
    "neighbor_sets_from_matchings",
    "gossip_from_neighbor_sets",
    "COORDINATOR",
    "Message",
    "MessageBus",
    "MessagingCoordinator",
    "TrainTask",
    "RoundStart",
    "RoundEnd",
    "ModelUpload",
    "ring_bottleneck",
    "best_bottleneck_ring",
    "best_bottleneck_matching",
    "greedy_ring",
    "two_opt_ring",
]
