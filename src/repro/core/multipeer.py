"""Multi-peer gossip: the degree/consensus/communication trade-off.

Section II-C of the paper: "One can add more connections in the graph to
achieve faster consensus, but it would introduce more communications. So
there exists a trade-off between communication efficiency and the time to
achieve consensus."  SAPS-PSGD picks degree 1 (one peer per round); this
module generalizes to degree ``k`` so the trade-off can be measured:

* :func:`union_of_matchings` — ``k`` edge-disjoint random perfect
  matchings per round (a random ``k``-regular-ish communication graph);
* :func:`gossip_from_neighbor_sets` — uniform-weight doubly stochastic
  ``W`` where each worker averages itself with its round-``k`` neighbours;
* :class:`MultiPeerSelector` — drop-in selector producing degree-``k``
  gossip rounds; per-worker traffic scales with ``k`` while ρ of
  ``E[WᵀW]`` falls (measured in ``bench_ablations_multipeer``).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.gossip import PeerSelectionResult
from repro.core.matching import Matching, randomly_max_match
from repro.utils.rng import SeedLike, as_generator


def union_of_matchings(
    num_workers: int,
    degree: int,
    rng: SeedLike = None,
    max_tries: int = 50,
) -> List[Matching]:
    """``degree`` edge-disjoint matchings over the complete graph.

    Returns a list of matchings; their union is a graph where every
    worker has exactly ``degree`` distinct neighbours (for even ``n``;
    odd ``n`` leaves one unmatched per matching).
    """
    if num_workers < 2:
        raise ValueError("need at least 2 workers")
    if not 1 <= degree < num_workers:
        raise ValueError(f"degree must be in [1, {num_workers - 1}], got {degree}")
    rng = as_generator(rng)
    for _ in range(max_tries):
        used = np.zeros((num_workers, num_workers), dtype=bool)
        matchings: List[Matching] = []
        ok = True
        for _ in range(degree):
            available = ~np.eye(num_workers, dtype=bool) & ~used
            matching = randomly_max_match(available, rng=rng)
            if len(matching) < num_workers // 2:
                ok = False
                break
            for a, b in matching:
                used[a, b] = used[b, a] = True
            matchings.append(matching)
        if ok:
            return matchings
    raise RuntimeError(
        f"could not build {degree} edge-disjoint perfect matchings "
        f"on {num_workers} workers in {max_tries} tries"
    )


def neighbor_sets_from_matchings(
    matchings: List[Matching], num_workers: int
) -> List[Set[int]]:
    """Per-worker neighbour sets of the union graph."""
    neighbors: List[Set[int]] = [set() for _ in range(num_workers)]
    for matching in matchings:
        for a, b in matching:
            neighbors[a].add(b)
            neighbors[b].add(a)
    return neighbors


def gossip_from_neighbor_sets(
    neighbors: List[Set[int]], num_workers: int
) -> np.ndarray:
    """Doubly stochastic ``W`` from symmetric neighbour sets.

    Uses Metropolis-Hastings weights
    ``W_ij = 1 / (1 + max(deg_i, deg_j))`` for neighbours, with the
    remainder on the diagonal — symmetric and doubly stochastic for any
    symmetric neighbour structure (including irregular ones from odd
    worker counts).
    """
    gossip = np.zeros((num_workers, num_workers))
    degrees = [len(s) for s in neighbors]
    for i in range(num_workers):
        for j in neighbors[i]:
            if j <= i:
                continue
            if i not in neighbors[j]:
                raise ValueError("neighbour sets must be symmetric")
            weight = 1.0 / (1.0 + max(degrees[i], degrees[j]))
            gossip[i, j] = gossip[j, i] = weight
    for i in range(num_workers):
        gossip[i, i] = 1.0 - gossip[i].sum()
    return gossip


class MultiPeerSelector:
    """Degree-``k`` generalization of the random single-peer selector.

    ``select(t)`` returns a :class:`PeerSelectionResult` whose
    ``matching`` is the union's edge list (so traffic accounting sees
    ``k`` exchanges per worker) and whose ``gossip`` averages each worker
    with all ``k`` neighbours.
    """

    def __init__(self, num_workers: int, degree: int, rng: SeedLike = None) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 1 <= degree < num_workers:
            raise ValueError(f"degree must be in [1, {num_workers - 1}]")
        self.num_workers = num_workers
        self.degree = degree
        self._rng = as_generator(rng)

    def select(
        self, round_index: int, active: Optional[np.ndarray] = None
    ) -> PeerSelectionResult:
        if active is not None:
            raise NotImplementedError(
                "MultiPeerSelector does not support churn; "
                "use degree=1 (SAPS) for dynamic membership"
            )
        matchings = union_of_matchings(
            self.num_workers, self.degree, rng=self._rng
        )
        neighbors = neighbor_sets_from_matchings(matchings, self.num_workers)
        gossip = gossip_from_neighbor_sets(neighbors, self.num_workers)
        edges: List[Tuple[int, int]] = sorted(
            edge for matching in matchings for edge in matching
        )
        return PeerSelectionResult(
            matching=edges,
            gossip=gossip,
            used_fallback=False,
            second_pass_pairs=0,
        )
