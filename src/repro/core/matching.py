"""Maximum matching in general graphs — Edmonds' blossom algorithm.

The paper (Section II-C) "exploit[s] the blossom algorithm [33] to solve
the problem of maximum match in a general graph" and implements
``RandomlyMaxMatch`` "by randomly starting from different node in a
graph".  This module provides both, from scratch:

* :func:`max_cardinality_matching` — O(V³) blossom algorithm with
  augmenting paths and blossom contraction.
* :func:`randomly_max_match` — the paper's randomized variant: relabel
  vertices with a random permutation before matching, so ties between
  equally-sized matchings are broken uniformly.
* :func:`greedy_weighted_matching` — an extension (see DESIGN.md §6):
  prefer heavier (higher-bandwidth) edges greedily, then complete to a
  maximum matching with blossom augmentation.

Graphs are symmetric boolean adjacency matrices; matchings are lists of
``(i, j)`` pairs with ``i < j``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_square

Matching = List[Tuple[int, int]]


def _adjacency_lists(adjacency: np.ndarray) -> List[List[int]]:
    adjacency = check_square(np.asarray(adjacency, dtype=bool), "adjacency")
    if np.any(np.diag(adjacency)):
        raise ValueError("adjacency must have an empty diagonal (no self-loops)")
    if not np.array_equal(adjacency, adjacency.T):
        raise ValueError("adjacency must be symmetric")
    return [np.flatnonzero(row).tolist() for row in adjacency]


class _BlossomState:
    """Working arrays for one augmenting-path search."""

    def __init__(self, n: int, match: List[int]) -> None:
        self.n = n
        self.match = match
        self.parent = [-1] * n  # alternating-tree parent edge
        self.base = list(range(n))  # blossom base of each vertex

    def lowest_common_ancestor(self, a: int, b: int) -> int:
        """LCA of ``a`` and ``b`` in the alternating tree, by base."""
        used = [False] * self.n
        v = a
        while True:
            v = self.base[v]
            used[v] = True
            if self.match[v] == -1:
                break
            v = self.parent[self.match[v]]
        v = b
        while True:
            v = self.base[v]
            if used[v]:
                return v
            v = self.parent[self.match[v]]

    def mark_blossom_path(
        self, v: int, blossom_base: int, child: int, in_blossom: List[bool]
    ) -> None:
        """Mark vertices on the path from ``v`` to the blossom base."""
        while self.base[v] != blossom_base:
            in_blossom[self.base[v]] = True
            in_blossom[self.base[self.match[v]]] = True
            self.parent[v] = child
            child = self.match[v]
            v = self.parent[self.match[v]]


def _find_augmenting_path(
    graph: List[List[int]], match: List[int], root: int
) -> int:
    """BFS for an augmenting path from unmatched ``root``.

    Returns the free vertex ending the path, or ``-1`` if none exists.
    Blossoms are contracted on the fly via the ``base`` array.
    """
    n = len(graph)
    state = _BlossomState(n, match)
    used = [False] * n
    used[root] = True
    queue = [root]

    while queue:
        v = queue.pop(0)
        for to in graph[v]:
            if state.base[v] == state.base[to] or match[v] == to:
                continue
            if to == root or (match[to] != -1 and state.parent[match[to]] != -1):
                # Odd cycle found: contract the blossom.
                current_base = state.lowest_common_ancestor(v, to)
                in_blossom = [False] * n
                state.mark_blossom_path(v, current_base, to, in_blossom)
                state.mark_blossom_path(to, current_base, v, in_blossom)
                for u in range(n):
                    if in_blossom[state.base[u]]:
                        state.base[u] = current_base
                        if not used[u]:
                            used[u] = True
                            queue.append(u)
            elif state.parent[to] == -1:
                state.parent[to] = v
                if match[to] == -1:
                    # Augment along the path ending at `to`.
                    u = to
                    while u != -1:
                        previous = state.parent[u]
                        next_vertex = match[previous]
                        match[u] = previous
                        match[previous] = u
                        u = next_vertex
                    return to
                used[match[to]] = True
                queue.append(match[to])
    return -1


def max_cardinality_matching(
    adjacency: np.ndarray, initial_match: Optional[Sequence[int]] = None
) -> Matching:
    """Maximum-cardinality matching via the blossom algorithm.

    Parameters
    ----------
    adjacency:
        Symmetric boolean adjacency matrix, empty diagonal.
    initial_match:
        Optional partial matching to extend, as a length-``n`` array where
        ``initial_match[v]`` is ``v``'s partner or ``-1``.

    Returns
    -------
    List of matched pairs ``(i, j)`` with ``i < j``, sorted.
    """
    graph = _adjacency_lists(adjacency)
    n = len(graph)
    if initial_match is not None:
        match = list(initial_match)
        if len(match) != n:
            raise ValueError("initial_match length must equal vertex count")
        for v, partner in enumerate(match):
            if partner != -1 and match[partner] != v:
                raise ValueError("initial_match is not a consistent matching")
    else:
        match = [-1] * n
        # Greedy warm start cuts the number of augmentation phases.
        for v in range(n):
            if match[v] == -1:
                for to in graph[v]:
                    if match[to] == -1:
                        match[v] = to
                        match[to] = v
                        break

    for v in range(n):
        if match[v] == -1:
            _find_augmenting_path(graph, match, v)

    return sorted(
        (v, match[v]) for v in range(n) if match[v] != -1 and v < match[v]
    )


def randomly_max_match(adjacency: np.ndarray, rng: SeedLike = None) -> Matching:
    """The paper's ``RandomlyMaxMatch``: blossom under a random vertex
    relabelling, so which maximum matching is returned varies uniformly
    with the RNG while cardinality stays maximal."""
    adjacency = check_square(np.asarray(adjacency, dtype=bool))
    rng = as_generator(rng)
    n = adjacency.shape[0]
    permutation = rng.permutation(n)
    shuffled = adjacency[np.ix_(permutation, permutation)]
    match = max_cardinality_matching(shuffled)
    restored = [
        (int(permutation[a]), int(permutation[b])) for a, b in match
    ]
    return sorted((min(a, b), max(a, b)) for a, b in restored)


def greedy_weighted_matching(
    weights: np.ndarray,
    rng: SeedLike = None,
    complete_with_blossom: bool = True,
) -> Matching:
    """Bandwidth-greedy matching (extension; not in the paper's Alg. 3).

    Edges with positive weight are taken heaviest-first (random tie
    breaks); optionally the result is extended to maximum cardinality via
    blossom augmentation restricted to positive-weight edges.
    """
    weights = check_square(np.asarray(weights, dtype=np.float64), "weights")
    rng = as_generator(rng)
    n = weights.shape[0]
    rows, cols = np.nonzero(np.triu(weights, k=1) > 0)
    if rows.size == 0:
        return []
    order = np.lexsort(
        (rng.random(rows.size), -weights[rows, cols])
    )  # heaviest first, random among equals
    matched = np.zeros(n, dtype=bool)
    match = [-1] * n
    for index in order:
        a, b = int(rows[index]), int(cols[index])
        if not matched[a] and not matched[b]:
            matched[a] = matched[b] = True
            match[a] = b
            match[b] = a
    if complete_with_blossom:
        adjacency = weights > 0
        np.fill_diagonal(adjacency, False)
        pairs = max_cardinality_matching(adjacency, initial_match=match)
    else:
        pairs = [(v, match[v]) for v in range(n) if match[v] > v]
    return sorted(pairs)


def is_valid_matching(matching: Matching, num_vertices: int) -> bool:
    """Check that no vertex appears twice and all indices are in range."""
    seen = set()
    for a, b in matching:
        if a == b:
            return False
        if not (0 <= a < num_vertices and 0 <= b < num_vertices):
            return False
        if a in seen or b in seen:
            return False
        seen.add(a)
        seen.add(b)
    return True


def matching_to_partner_array(matching: Matching, num_vertices: int) -> np.ndarray:
    """Length-``n`` array: ``partner[v]`` is ``v``'s peer or ``-1``.

    This is the ``W_t[rank]`` lookup a worker performs (Algorithm 2,
    line 8).
    """
    if not is_valid_matching(matching, num_vertices):
        raise ValueError("invalid matching")
    partners = np.full(num_vertices, -1, dtype=np.int64)
    if matching:
        pairs = np.asarray(matching, dtype=np.int64)
        partners[pairs[:, 0]] = pairs[:, 1]
        partners[pairs[:, 1]] = pairs[:, 0]
    return partners
