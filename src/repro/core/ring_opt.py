"""Bottleneck-optimal ring topologies — the NP-complete problem the paper
sidesteps.

Section II-C: "choosing the best ring-topology with diverse link
bandwidths is to find a Hamilton Cycle which is a classical NP-Complete
problem".  To make that argument measurable we implement the problem the
paper declines to solve:

* :func:`best_bottleneck_ring` — exact solver: binary-search the
  bottleneck threshold over the sorted distinct link speeds, checking
  Hamiltonicity of the thresholded graph by backtracking (fine for the
  paper's n ≤ 32 only on lucky instances; exponential in general — the
  point);
* :func:`greedy_ring` / :func:`two_opt_ring` — polynomial heuristics;
* :func:`ring_bottleneck` — the min link around a cycle.

``bench_ring_opt`` compares the *optimal* ring's bottleneck against
SAPS-PSGD's per-round matchings: even the best possible static ring is
limited by its single worst necessary edge, while matchings re-chosen
every round avoid slow links entirely (at the cost of needing Assumption
3's reconnection for convergence).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_square


def ring_bottleneck(order: Sequence[int], bandwidth: np.ndarray) -> float:
    """Minimum link speed around the cycle ``order[0] → ... → order[0]``."""
    order = list(order)
    if len(order) < 3:
        raise ValueError("a ring needs at least 3 workers")
    if sorted(order) != list(range(len(order))):
        raise ValueError("order must be a permutation of range(n)")
    return float(
        min(
            bandwidth[order[i], order[(i + 1) % len(order)]]
            for i in range(len(order))
        )
    )


def _hamiltonian_cycle(adjacency: np.ndarray) -> Optional[List[int]]:
    """Backtracking Hamiltonian-cycle search (exponential worst case).

    Vertices are visited in order of ascending degree-sum heuristics to
    fail fast on sparse graphs.  Returns a vertex order or None.
    """
    n = adjacency.shape[0]
    if n == 0:
        return None
    degrees = adjacency.sum(axis=1)
    if np.any(degrees < 2):
        return None
    neighbors = [np.flatnonzero(adjacency[v]).tolist() for v in range(n)]
    path = [0]
    visited = [False] * n
    visited[0] = True

    def backtrack() -> bool:
        if len(path) == n:
            return bool(adjacency[path[-1], path[0]])
        current = path[-1]
        # Try scarcer vertices first (degree heuristic).
        for nxt in sorted(neighbors[current], key=lambda v: degrees[v]):
            if not visited[nxt]:
                visited[nxt] = True
                path.append(nxt)
                if backtrack():
                    return True
                path.pop()
                visited[nxt] = False
        return False

    return list(path) if backtrack() else None


def best_bottleneck_ring(
    bandwidth: np.ndarray, max_nodes: int = 16
) -> Tuple[List[int], float]:
    """Exact bottleneck-optimal Hamiltonian cycle.

    Binary-searches the answer over the sorted distinct link speeds: the
    optimal bottleneck is the largest threshold ``b`` such that the graph
    of links ``≥ b`` is Hamiltonian.  Exponential via the Hamiltonicity
    oracle — guarded by ``max_nodes`` to keep the NP-completeness
    honest.

    Returns ``(vertex_order, bottleneck)``.
    """
    bandwidth = check_square(np.asarray(bandwidth, dtype=np.float64))
    n = bandwidth.shape[0]
    if n < 3:
        raise ValueError("a ring needs at least 3 workers")
    if n > max_nodes:
        raise ValueError(
            f"exact solver limited to {max_nodes} nodes (NP-complete); "
            f"use two_opt_ring for n={n}"
        )
    speeds = np.unique(
        bandwidth[~np.eye(n, dtype=bool) & (bandwidth > 0)]
    )
    if speeds.size == 0:
        raise ValueError("bandwidth matrix has no positive links")

    best_order: Optional[List[int]] = None
    low, high = 0, speeds.size - 1
    while low <= high:
        mid = (low + high) // 2
        threshold = speeds[mid]
        adjacency = bandwidth >= threshold
        np.fill_diagonal(adjacency, False)
        order = _hamiltonian_cycle(adjacency)
        if order is not None:
            best_order = order
            low = mid + 1
        else:
            high = mid - 1
    if best_order is None:
        raise ValueError("graph has no Hamiltonian cycle at any threshold")
    return best_order, ring_bottleneck(best_order, bandwidth)


def best_bottleneck_matching(
    bandwidth: np.ndarray,
) -> Tuple[List[Tuple[int, int]], float]:
    """Bottleneck-optimal *perfect matching* — polynomial, unlike the ring.

    Binary-searches the threshold over distinct link speeds; feasibility
    at each threshold is a maximum-cardinality matching query (blossom,
    polynomial).  This is the tractable problem SAPS-PSGD solves each
    round instead of the NP-complete Hamiltonian-cycle problem, and its
    optimum is always ≥ the optimal ring's bottleneck (a perfect matching
    is half of some 2-factor; the ring needs twice the edges).

    Returns ``(matching, bottleneck)``; requires an even worker count.
    """
    from repro.core.matching import max_cardinality_matching

    bandwidth = check_square(np.asarray(bandwidth, dtype=np.float64))
    n = bandwidth.shape[0]
    if n < 2 or n % 2 != 0:
        raise ValueError("perfect matching needs an even worker count >= 2")
    speeds = np.unique(bandwidth[~np.eye(n, dtype=bool) & (bandwidth > 0)])
    if speeds.size == 0:
        raise ValueError("bandwidth matrix has no positive links")

    best_matching = None
    low, high = 0, speeds.size - 1
    while low <= high:
        mid = (low + high) // 2
        adjacency = bandwidth >= speeds[mid]
        np.fill_diagonal(adjacency, False)
        matching = max_cardinality_matching(adjacency)
        if len(matching) == n // 2:
            best_matching = matching
            low = mid + 1
        else:
            high = mid - 1
    if best_matching is None:
        raise ValueError("graph has no perfect matching at any threshold")
    bottleneck = float(min(bandwidth[a, b] for a, b in best_matching))
    return best_matching, bottleneck


def greedy_ring(bandwidth: np.ndarray, start: int = 0) -> List[int]:
    """Nearest-neighbour-style heuristic: repeatedly hop to the unvisited
    worker with the fastest link."""
    bandwidth = check_square(np.asarray(bandwidth, dtype=np.float64))
    n = bandwidth.shape[0]
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range")
    order = [start]
    remaining = set(range(n)) - {start}
    while remaining:
        current = order[-1]
        nxt = max(remaining, key=lambda v: bandwidth[current, v])
        order.append(nxt)
        remaining.remove(nxt)
    return order


def two_opt_ring(
    bandwidth: np.ndarray,
    initial: Optional[Sequence[int]] = None,
    max_passes: int = 20,
    rng: SeedLike = None,
) -> List[int]:
    """2-opt local search maximizing the ring bottleneck.

    Starting from ``initial`` (default: the greedy ring), repeatedly
    reverses segments whenever doing so raises the cycle's minimum link,
    until a local optimum or ``max_passes``.
    """
    bandwidth = check_square(np.asarray(bandwidth, dtype=np.float64))
    n = bandwidth.shape[0]
    if n < 3:
        raise ValueError("a ring needs at least 3 workers")
    order = list(initial) if initial is not None else greedy_ring(bandwidth)
    if sorted(order) != list(range(n)):
        raise ValueError("initial must be a permutation of range(n)")
    rng = as_generator(rng)

    def bottleneck(candidate: List[int]) -> float:
        return ring_bottleneck(candidate, bandwidth)

    best = bottleneck(order)
    for _ in range(max_passes):
        improved = False
        for i in range(n - 1):
            for j in range(i + 2, n if i > 0 else n - 1):
                candidate = order[: i + 1] + order[i + 1 : j + 1][::-1] + order[j + 1 :]
                value = bottleneck(candidate)
                if value > best:
                    order, best = candidate, value
                    improved = True
        if not improved:
            break
    return order
