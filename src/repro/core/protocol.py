"""The SAPS-PSGD wire protocol: Coordinator (Alg. 1) and worker exchange (Alg. 2).

These classes implement the paper's protocol at the level of flat model
vectors and payload objects — independent of the neural-network substrate,
so the protocol is testable on toy vectors.  The full training algorithm
(:class:`repro.algorithms.SAPSPSGD`) composes them with real models.

Message flow per round ``t``:

* Coordinator: generate ``W_t`` via :class:`AdaptivePeerSelector`, draw a
  mask seed ``s``, broadcast ``(W_t, t, s)`` (small message — it never
  carries model data).
* Worker ``p``: run local SGD, build the shared mask from ``s``, send the
  masked components to ``W_t[p]``, receive the peer's, average the masked
  coordinates, leave the rest untouched, then notify "ROUND END".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.compression.base import SharedMaskPayload
from repro.compression.random_mask import generate_mask
from repro.core.gossip import (
    AdaptivePeerSelector,
    PeerSelectionResult,
    gossip_matrix_from_matching,
)
from repro.core.matching import Matching, matching_to_partner_array
from repro.utils.rng import SeedLike, as_generator, derive_seed


@dataclass
class RoundPlan:
    """The coordinator's broadcast for one round: ``(W_t, t, s)``.

    ``partners[p]`` is worker ``p``'s peer (``-1`` = unmatched this
    round), which is what ``W_t[rank]`` resolves to in Algorithm 2.
    """

    round_index: int
    matching: Matching
    partners: np.ndarray
    gossip: np.ndarray
    mask_seed: int
    used_fallback: bool = False


class Coordinator:
    """Algorithm 1: lightweight tracker-style coordinator.

    Holds only *small* global state — bandwidth matrix, timestamps, seeds
    — never model parameters (except the single final model it collects).
    """

    def __init__(
        self,
        bandwidth: np.ndarray,
        bandwidth_threshold: Optional[float] = None,
        connectivity_gap: int = 20,
        base_seed: int = 0,
        rng: SeedLike = None,
        prefer_weighted: bool = False,
    ) -> None:
        self.selector = AdaptivePeerSelector(
            bandwidth,
            bandwidth_threshold=bandwidth_threshold,
            connectivity_gap=connectivity_gap,
            rng=as_generator(rng if rng is not None else base_seed),
            prefer_weighted=prefer_weighted,
        )
        self.num_workers = self.selector.num_workers
        self.base_seed = int(base_seed)
        self._round_ends: List[int] = []
        self._expected_ends = self.num_workers
        self.current_round = -1
        self.final_model: Optional[np.ndarray] = None

    def plan_round(
        self, round_index: int, active: Optional[np.ndarray] = None
    ) -> RoundPlan:
        """Generate and "broadcast" the round's ``(W_t, t, s)``.

        ``active`` excludes offline workers from the matching (the
        coordinator knows who is connected — it is the tracker).
        """
        if round_index <= self.current_round:
            raise ValueError(
                f"round {round_index} already planned (at {self.current_round})"
            )
        selection: PeerSelectionResult = self.selector.select(
            round_index, active=active
        )
        self.current_round = round_index
        self._round_ends = []
        self._expected_ends = (
            self.num_workers if active is None else int(np.sum(active))
        )
        return RoundPlan(
            round_index=round_index,
            matching=selection.matching,
            partners=matching_to_partner_array(
                selection.matching, self.num_workers
            ),
            gossip=selection.gossip,
            mask_seed=derive_seed(self.base_seed, "mask", round_index),
            used_fallback=selection.used_fallback,
        )

    def notify_round_end(self, rank: int) -> None:
        """A worker's "ROUND END" message (Algorithm 2, line 11)."""
        if not 0 <= rank < self.num_workers:
            raise ValueError(f"rank {rank} out of range")
        if rank in self._round_ends:
            raise ValueError(f"worker {rank} already ended round")
        self._round_ends.append(rank)

    def round_complete(self) -> bool:
        """True once every *participating* worker has notified
        (Algorithm 1, line 7)."""
        return len(self._round_ends) == self._expected_ends

    def collect_model(self, model_vector: np.ndarray) -> None:
        """Receive the final full model from any single worker."""
        self.final_model = np.asarray(model_vector, dtype=np.float64).copy()


class ModelExchangeWorker:
    """Algorithm 2's communication half, over a flat model vector.

    The caller owns local training; this class owns mask generation,
    payload construction and the Eq. (7) merge.
    """

    def __init__(self, rank: int, model_vector: np.ndarray, compression_ratio: float) -> None:
        if compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1")
        self.rank = rank
        self.x = np.asarray(model_vector, dtype=np.float64).copy()
        self.compression_ratio = float(compression_ratio)

    @property
    def model_size(self) -> int:
        return self.x.size

    def build_payload(self, mask_seed: int) -> SharedMaskPayload:
        """``x̃ = x ∘ m_t`` packed for the wire (lines 6-7, 9)."""
        mask = generate_mask(self.model_size, self.compression_ratio, mask_seed)
        indices = np.flatnonzero(mask)
        return SharedMaskPayload(
            values=self.x[indices].copy(), indices=indices, mask_seed=int(mask_seed)
        )

    def merge_peer(self, payload: SharedMaskPayload, mask_seed: int) -> None:
        """Eq. (7) merge: masked coordinates become the pairwise average
        ``(x_own + x_peer)/2`` (gossip weights 1/2, 1/2); unmasked
        coordinates are untouched (``x ∘ ¬m_t`` term)."""
        if payload.mask_seed != mask_seed:
            raise ValueError(
                f"peer payload carries seed {payload.mask_seed}, "
                f"expected {mask_seed} — shared-mask invariant violated"
            )
        mask = generate_mask(self.model_size, self.compression_ratio, mask_seed)
        indices = np.flatnonzero(mask)
        if indices.size != payload.indices.size or not np.array_equal(
            indices, payload.indices
        ):
            raise ValueError("peer mask does not match locally generated mask")
        self.x[indices] = 0.5 * self.x[indices] + 0.5 * payload.values


def exchange_pair(
    worker_a: ModelExchangeWorker,
    worker_b: ModelExchangeWorker,
    mask_seed: int,
) -> Tuple[SharedMaskPayload, SharedMaskPayload]:
    """Full bidirectional exchange between two matched workers.

    Returns the two payloads that crossed the wire (for traffic
    accounting).  After the call both workers agree exactly on the masked
    coordinates.
    """
    payload_a = worker_a.build_payload(mask_seed)
    payload_b = worker_b.build_payload(mask_seed)
    worker_a.merge_peer(payload_b, mask_seed)
    worker_b.merge_peer(payload_a, mask_seed)
    return payload_a, payload_b
