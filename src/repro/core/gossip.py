"""Gossip-matrix generation with adaptive peer selection (Algorithm 3).

Per round ``t`` the coordinator produces a perfect (or maximum) matching
over the workers and converts it to the doubly-stochastic gossip matrix
``W_t`` (``W_ii = W_ij = 1/2`` for matched pairs — each worker averages
with exactly one peer).

Peer selection is *adaptive*:

1. A timestamp matrix ``R`` records when each pair last communicated; an
   edge is "recently connected" (RC) when ``R_ij > t − T_thres``.
2. If the RC edges span a connected graph, match on the
   bandwidth-filtered graph ``B* = [B ≥ B_thres]`` — preferring
   high-bandwidth links (Algorithm 1's ``GetNewConnectedGraph``).
3. Otherwise match on edges *between* RC-connected sub-graphs
   (``GetOvertimeMatrix``) to restore long-run connectivity — the
   mechanism that keeps the second-largest eigenvalue of ``E[WᵀW]``
   below 1 (Assumption 3).
4. Any still-unmatched workers are matched ignoring bandwidth
   (``GetUnmatch``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.matching import (
    Matching,
    greedy_weighted_matching,
    matching_to_partner_array,
    max_cardinality_matching,
    randomly_max_match,
)
from repro.network.topology import (
    connected_components,
    is_connected,
    threshold_graph,
)
from repro.network.bandwidth import symmetrize_min
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_square


def gossip_matrix_from_matching(matching: Matching, num_workers: int) -> np.ndarray:
    """Algorithm 3's ``GenerateW``: matched pairs average (entries 1/2);
    unmatched workers keep their model (diagonal 1).

    The result is symmetric and doubly stochastic for any valid matching.
    """
    partners = matching_to_partner_array(matching, num_workers)
    gossip = np.zeros((num_workers, num_workers))
    workers = np.arange(num_workers)
    matched = partners >= 0
    gossip[workers, workers] = np.where(matched, 0.5, 1.0)
    gossip[workers[matched], partners[matched]] = 0.5
    return gossip


def ring_gossip_matrix(num_workers: int, self_weight: float = 1.0 / 3.0) -> np.ndarray:
    """Uniform ring gossip matrix used by the D-PSGD/DCD-PSGD baselines:
    each worker averages itself with its two ring neighbours."""
    if num_workers < 3:
        raise ValueError("ring gossip needs at least 3 workers")
    neighbor_weight = (1.0 - self_weight) / 2.0
    gossip = np.zeros((num_workers, num_workers))
    for i in range(num_workers):
        gossip[i, i] = self_weight
        gossip[i, (i + 1) % num_workers] = neighbor_weight
        gossip[i, (i - 1) % num_workers] = neighbor_weight
    return gossip


@dataclass
class PeerSelectionResult:
    """Outcome of one round of Algorithm 3."""

    matching: Matching
    gossip: np.ndarray
    used_fallback: bool  # True when the RC graph was disconnected
    second_pass_pairs: int  # pairs matched ignoring bandwidth


class AdaptivePeerSelector:
    """Stateful Algorithm 3: owns ``B``, ``B*``, ``R`` and ``T_thres``.

    Parameters
    ----------
    bandwidth:
        Raw pairwise-speed matrix; symmetrized with ``min`` as in the
        paper.
    bandwidth_threshold:
        ``B_thres``; edges at or above it form the preferred graph
        ``B*``.  Pass ``None`` to use the median link speed (a practical
        default the paper leaves to the user).
    connectivity_gap:
        ``T_thres``: how many rounds an edge stays "recently connected".
    prefer_weighted:
        Extension switch: use bandwidth-greedy matching inside ``B*``
        instead of uniform random maximum matching (DESIGN.md §6).
    """

    def __init__(
        self,
        bandwidth: np.ndarray,
        bandwidth_threshold: Optional[float] = None,
        connectivity_gap: int = 20,
        rng: SeedLike = None,
        prefer_weighted: bool = False,
    ) -> None:
        bandwidth = check_square(np.asarray(bandwidth, dtype=np.float64))
        self.bandwidth = symmetrize_min(bandwidth)
        self.num_workers = self.bandwidth.shape[0]
        if connectivity_gap <= 0:
            raise ValueError(
                f"connectivity_gap must be positive, got {connectivity_gap}"
            )
        self.connectivity_gap = int(connectivity_gap)
        off_diagonal = self.bandwidth[
            ~np.eye(self.num_workers, dtype=bool)
        ]
        if bandwidth_threshold is None:
            bandwidth_threshold = float(np.median(off_diagonal))
        self.bandwidth_threshold = float(bandwidth_threshold)
        self.filtered = threshold_graph(self.bandwidth, self.bandwidth_threshold)
        self._rng = as_generator(rng)
        self.prefer_weighted = prefer_weighted
        # R: last-communication timestamps.  Initialized far in the past
        # so round 0 starts with an empty RC graph.
        self.timestamps = np.full(
            (self.num_workers, self.num_workers), -10 * self.connectivity_gap - 1,
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Algorithm 3 sub-procedures
    # ------------------------------------------------------------------
    @staticmethod
    def _restrict(graph: np.ndarray, active: Optional[np.ndarray]) -> np.ndarray:
        """Drop edges touching inactive workers (federated churn)."""
        if active is None:
            return graph
        active = np.asarray(active, dtype=bool)
        return graph & np.logical_and.outer(active, active)

    def recently_connected(self, round_index: int) -> np.ndarray:
        """``IfConnected``'s Q matrix: edges with
        ``R_ij > t − T_thres``."""
        rc = self.timestamps > (round_index - self.connectivity_gap)
        rc = rc | rc.T
        np.fill_diagonal(rc, False)
        return rc

    def overtime_matrix(self, round_index: int) -> np.ndarray:
        """``GetOvertimeMatrix``: edges between distinct RC components."""
        rc = self.recently_connected(round_index)
        components = connected_components(rc)
        labels = np.zeros(self.num_workers, dtype=np.int64)
        for label, component in enumerate(components):
            labels[component] = label
        cross = labels[:, None] != labels[None, :]
        np.fill_diagonal(cross, False)
        return cross

    @staticmethod
    def unmatched_graph(matching: Matching, num_workers: int) -> np.ndarray:
        """``GetUnmatch``: complete graph over workers missing from
        ``matching``."""
        partners = matching_to_partner_array(matching, num_workers)
        free = partners == -1
        graph = np.logical_and.outer(free, free)
        np.fill_diagonal(graph, False)
        return graph

    def _match(self, graph: np.ndarray) -> Matching:
        if self.prefer_weighted:
            weights = np.where(graph, self.bandwidth, 0.0)
            return greedy_weighted_matching(weights, rng=self._rng)
        return randomly_max_match(graph, rng=self._rng)

    # ------------------------------------------------------------------
    # the per-round entry point (Algorithm 3 proper)
    # ------------------------------------------------------------------
    def select(
        self, round_index: int, active: Optional[np.ndarray] = None
    ) -> PeerSelectionResult:
        """Run Algorithm 3 for round ``round_index``.

        ``active`` (optional boolean mask) excludes offline workers from
        the matching — the federated-churn case the paper's "R." column
        claims robustness to.  Offline workers get ``W_ii = 1``.

        Returns the matching, the gossip matrix ``W_t``, and diagnostics.
        Updates the timestamp matrix ``R`` for matched pairs.
        """
        rc = self.recently_connected(round_index)
        if active is not None:
            active = np.asarray(active, dtype=bool)
            # Connectivity is judged on the *active* subgraph — offline
            # workers cannot carry information this round.
            rc = rc[np.ix_(active, active)]
        if is_connected(rc):
            candidate = self.filtered
            used_fallback = False
        else:
            candidate = self.overtime_matrix(round_index)
            used_fallback = True
        candidate = self._restrict(candidate, active)

        matching = list(self._match(candidate))
        target_pairs = (
            self.num_workers if active is None else int(np.sum(active))
        ) // 2
        second_pass = 0
        if len(matching) != target_pairs:
            free_graph = self._restrict(
                self.unmatched_graph(matching, self.num_workers), active
            )
            extra = randomly_max_match(free_graph, rng=self._rng)
            second_pass = len(extra)
            matching.extend(extra)
        matching.sort()

        for a, b in matching:
            self.timestamps[a, b] = self.timestamps[b, a] = round_index

        gossip = gossip_matrix_from_matching(matching, self.num_workers)
        return PeerSelectionResult(
            matching=matching,
            gossip=gossip,
            used_fallback=used_fallback,
            second_pass_pairs=second_pass,
        )


class RandomPeerSelector:
    """The paper's "RandomChoose" baseline (Fig. 5): uniform random
    maximum matching on the complete graph every round."""

    def __init__(self, num_workers: int, rng: SeedLike = None) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        self.num_workers = num_workers
        self._rng = as_generator(rng)
        self._complete = ~np.eye(num_workers, dtype=bool)

    def select(
        self, round_index: int, active: Optional[np.ndarray] = None
    ) -> PeerSelectionResult:
        graph = self._complete
        if active is not None:
            active = np.asarray(active, dtype=bool)
            graph = graph & np.logical_and.outer(active, active)
        matching = randomly_max_match(graph, rng=self._rng)
        return PeerSelectionResult(
            matching=matching,
            gossip=gossip_matrix_from_matching(matching, self.num_workers),
            used_fallback=False,
            second_pass_pairs=0,
        )


class FixedRingSelector:
    """Static pairing baseline derived from a ring order: alternates the
    two perfect matchings of an even cycle (rounds alternate odd/even
    edges), giving single-peer communication on a fixed topology."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 2 or num_workers % 2 != 0:
            raise ValueError("fixed ring pairing needs an even worker count")
        self.num_workers = num_workers

    def select(
        self, round_index: int, active: Optional[np.ndarray] = None
    ) -> PeerSelectionResult:
        offset = round_index % 2
        matching = [
            (i, (i + 1) % self.num_workers)
            for i in range(offset, self.num_workers, 2)
        ]
        if active is not None:
            active = np.asarray(active, dtype=bool)
            # A fixed topology cannot re-pair around failures: any pair
            # with an offline member simply loses its exchange (the
            # brittleness the paper criticizes).
            matching = [
                (a, b) for a, b in matching if active[a] and active[b]
            ]
        matching = sorted((min(a, b), max(a, b)) for a, b in matching)
        return PeerSelectionResult(
            matching=matching,
            gossip=gossip_matrix_from_matching(matching, self.num_workers),
            used_fallback=False,
            second_pass_pairs=0,
        )
