"""The 7-algorithm comparison harness behind Figs. 3/4/6 and Tables III/IV.

:func:`paper_algorithm_suite` instantiates every compared algorithm with
the paper's hyperparameters (Section IV-A): SAPS-PSGD c=100, TopK-PSGD
c=1000, DCD-PSGD c=4, FedAvg/S-FedAvg participation 0.5.
:func:`run_comparison` runs them all on a shared workload and returns the
per-algorithm trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import (
    DCDPSGD,
    DPSGD,
    FedAvg,
    PSGD,
    SAPSPSGD,
    SparseFedAvg,
    TopKPSGD,
    DistributedAlgorithm,
)
from repro.data.datasets import Dataset
from repro.network.transport import SimulatedNetwork
from repro.nn.module import Module
from repro.sim.engine import ExperimentConfig, ExperimentResult, run_experiment


@dataclass
class SuiteSettings:
    """Paper Section IV-A hyperparameters, overridable per study."""

    saps_compression: float = 100.0
    topk_compression: float = 1000.0
    dcd_compression: float = 4.0
    fedavg_participation: float = 0.5
    fedavg_local_steps: int = 5
    sfedavg_compression: float = 100.0
    connectivity_gap: int = 20
    bandwidth_threshold: Optional[float] = None
    base_seed: int = 0
    #: Local SGD steps per round for the decentralized algorithms'
    #: local phase (SAPS-PSGD); FedAvg/S-FedAvg keep their own
    #: ``fedavg_local_steps``.  The paper uses 1.
    saps_local_steps: int = 1


def paper_algorithm_suite(
    settings: Optional[SuiteSettings] = None,
) -> Dict[str, Callable[[], DistributedAlgorithm]]:
    """Factories for the seven compared algorithms, keyed by paper name."""
    settings = settings or SuiteSettings()
    return {
        "PSGD": lambda: PSGD(),
        "TopK-PSGD": lambda: TopKPSGD(settings.topk_compression),
        "FedAvg": lambda: FedAvg(
            settings.fedavg_participation, settings.fedavg_local_steps
        ),
        "S-FedAvg": lambda: SparseFedAvg(
            settings.fedavg_participation,
            settings.fedavg_local_steps,
            settings.sfedavg_compression,
        ),
        "D-PSGD": lambda: DPSGD(),
        "DCD-PSGD": lambda: DCDPSGD(settings.dcd_compression),
        "SAPS-PSGD": lambda: SAPSPSGD(
            compression_ratio=settings.saps_compression,
            bandwidth_threshold=settings.bandwidth_threshold,
            connectivity_gap=settings.connectivity_gap,
            base_seed=settings.base_seed,
            local_steps=settings.saps_local_steps,
        ),
    }


def run_comparison(
    partitions: Sequence[Dataset],
    validation: Dataset,
    model_factory: Callable[[], Module],
    config: ExperimentConfig,
    bandwidth: Optional[np.ndarray] = None,
    settings: Optional[SuiteSettings] = None,
    algorithms: Optional[Sequence[str]] = None,
    dtype: Optional[str] = None,
    local_steps: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """Run the full (or a named subset of the) suite on one workload.

    Every algorithm gets a *fresh* network meter so trajectories are
    independently accounted, and the same config seed so workers sample
    comparable batch sequences.

    ``dtype`` / ``local_steps`` override the corresponding
    :class:`ExperimentConfig` fields for the whole comparison (the
    passed config and settings are not mutated).  A ``local_steps``
    above 1 is the workload-level schedule: the engine applies it to
    every algorithm with a local phase (SAPS-PSGD and FedAvg/S-FedAvg
    alike), and :attr:`SuiteSettings.saps_local_steps` is updated so the
    constructed suite agrees with the recorded config.
    """
    overrides = {}
    if dtype is not None:
        overrides["dtype"] = dtype
    if local_steps is not None:
        overrides["local_steps"] = local_steps
    if overrides:
        config = replace(config, **overrides)
    if local_steps is not None:
        settings = replace(
            settings or SuiteSettings(), saps_local_steps=local_steps
        )
    suite = paper_algorithm_suite(settings)
    if algorithms is not None:
        unknown = set(algorithms) - set(suite)
        if unknown:
            raise KeyError(f"unknown algorithms: {sorted(unknown)}")
        suite = {name: suite[name] for name in algorithms}

    results: Dict[str, ExperimentResult] = {}
    for name, factory in suite.items():
        network = SimulatedNetwork(
            num_workers=len(partitions),
            bandwidth=bandwidth,
            server_bandwidth=(
                float(np.max(bandwidth)) if bandwidth is not None else None
            ),
        )
        results[name] = run_experiment(
            algorithm=factory(),
            partitions=partitions,
            validation=validation,
            model_factory=model_factory,
            config=config,
            network=network,
        )
    return results
