"""Parameter-sweep runner: grids of experiments with tidy results.

The ablation benches and examples all need the same scaffolding — run an
algorithm factory over a parameter grid on a fixed workload and collect
scalar outcomes.  :func:`run_sweep` provides it once, with deterministic
per-cell seeds and a tidy list-of-dicts result that renders directly via
:func:`repro.analysis.render_table`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.network.transport import SimulatedNetwork
from repro.sim.engine import ExperimentConfig, ExperimentResult, run_experiment
from repro.utils.rng import derive_seed


@dataclass
class SweepCell:
    """One grid point: the parameters and the resulting trajectory."""

    params: Dict[str, Any]
    result: ExperimentResult

    def scalar(self, name: str) -> float:
        """Common scalar outcomes by name."""
        record = self.result.history[-1]
        lookup = {
            "final_accuracy": self.result.final_accuracy,
            "best_accuracy": self.result.best_accuracy,
            "traffic_mb": record.worker_traffic_mb,
            "comm_time_s": record.comm_time_s,
            "consensus_distance": record.consensus_distance,
            "train_loss": record.train_loss,
        }
        if name not in lookup:
            raise KeyError(
                f"unknown scalar {name!r}; available: {sorted(lookup)}"
            )
        return float(lookup[name])


def grid(**axes: Sequence) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of param dicts.

    >>> grid(c=[1, 10], selector=["adaptive"])
    [{'c': 1, 'selector': 'adaptive'}, {'c': 10, 'selector': 'adaptive'}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    algorithm_factory: Callable[..., Any],
    param_grid: Sequence[Dict[str, Any]],
    partitions: Sequence[Dataset],
    validation: Dataset,
    model_factory: Callable[[], Any],
    config: ExperimentConfig,
    bandwidth: Optional[np.ndarray] = None,
    dtype: Optional[str] = None,
    local_steps: Optional[int] = None,
) -> List[SweepCell]:
    """Run ``algorithm_factory(**params)`` for every grid point.

    Every cell gets a fresh network (independent accounting) and the
    shared config; determinism comes from the config seed (identical
    across cells so outcomes are comparable).

    ``dtype`` / ``local_steps`` override the corresponding
    :class:`ExperimentConfig` fields for the whole sweep (the passed
    config is not mutated) — the sweep-level knobs for the float32
    substrate and the amortized local-step schedule.
    """
    overrides = {}
    if dtype is not None:
        overrides["dtype"] = dtype
    if local_steps is not None:
        overrides["local_steps"] = local_steps
    if overrides:
        config = replace(config, **overrides)
    cells: List[SweepCell] = []
    for params in param_grid:
        network = SimulatedNetwork(
            num_workers=len(partitions),
            bandwidth=bandwidth,
            server_bandwidth=(
                float(np.max(bandwidth)) if bandwidth is not None else None
            ),
        )
        algorithm = algorithm_factory(**params)
        result = run_experiment(
            algorithm, partitions, validation, model_factory, config, network
        )
        cells.append(SweepCell(params=dict(params), result=result))
    return cells


def sweep_table(
    cells: Sequence[SweepCell],
    scalars: Sequence[str] = ("final_accuracy", "traffic_mb", "comm_time_s"),
) -> List[List]:
    """Rows for :func:`repro.analysis.render_table`: params then scalars."""
    if not cells:
        return []
    param_names = sorted(cells[0].params)
    rows = []
    for cell in cells:
        row = [cell.params[name] for name in param_names]
        row.extend(round(cell.scalar(name), 5) for name in scalars)
        rows.append(row)
    return rows


def sweep_headers(
    cells: Sequence[SweepCell],
    scalars: Sequence[str] = ("final_accuracy", "traffic_mb", "comm_time_s"),
) -> List[str]:
    """Matching headers for :func:`sweep_table`."""
    if not cells:
        return list(scalars)
    return sorted(cells[0].params) + list(scalars)
