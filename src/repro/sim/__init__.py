"""Simulation engine: training workers, round engine, comparison harness."""

from repro.sim.trainer import TrainingWorker
from repro.sim.cluster import ClusterTrainer
from repro.sim.engine import (
    ExperimentConfig,
    ExperimentResult,
    RoundRecord,
    evaluate_consensus,
    make_workers,
    run_experiment,
)
from repro.sim.comparison import (
    SuiteSettings,
    paper_algorithm_suite,
    run_comparison,
)
from repro.sim.dynamics import (
    AlwaysOn,
    AvailabilitySchedule,
    ChurnModel,
    MarkovChurn,
)
from repro.sim.sweep import (
    SweepCell,
    grid,
    run_sweep,
    sweep_headers,
    sweep_table,
)
from repro.sim.timing import (
    ComputeModel,
    ConstantCompute,
    HeterogeneousCompute,
)
from repro.sim.calendar import CalendarQueue
from repro.sim.events import (
    EventEngine,
    EventQueue,
    EventResult,
    EventTrace,
    NullTrace,
    TimedRecord,
    run_event_experiment,
    run_sync_timeline,
)
from repro.sim.population import (
    AlwaysUp,
    ClientPopulation,
    RenewalPopulation,
    parse_population,
)
from repro.sim.participation import ParticipationContext
from repro.sim.faults import (
    FaultChurn,
    FaultEvent,
    FaultLinkLoss,
    FaultPlan,
)

__all__ = [
    "TrainingWorker",
    "ClusterTrainer",
    "ExperimentConfig",
    "ExperimentResult",
    "RoundRecord",
    "make_workers",
    "run_experiment",
    "evaluate_consensus",
    "SuiteSettings",
    "paper_algorithm_suite",
    "run_comparison",
    "ChurnModel",
    "AlwaysOn",
    "MarkovChurn",
    "AvailabilitySchedule",
    "grid",
    "run_sweep",
    "SweepCell",
    "sweep_table",
    "sweep_headers",
    "ComputeModel",
    "ConstantCompute",
    "HeterogeneousCompute",
    "CalendarQueue",
    "EventEngine",
    "EventQueue",
    "EventResult",
    "EventTrace",
    "NullTrace",
    "TimedRecord",
    "ClientPopulation",
    "AlwaysUp",
    "RenewalPopulation",
    "parse_population",
    "ParticipationContext",
    "run_event_experiment",
    "run_sync_timeline",
    "FaultPlan",
    "FaultEvent",
    "FaultChurn",
    "FaultLinkLoss",
]
