"""Calendar-queue event scheduler: bucketed time bins behind the
:class:`~repro.sim.events.EventQueue` API.

The binary-heap :class:`~repro.sim.events.EventQueue` pays ``O(log n)``
*Python-level list comparisons* per push and pop.  At a standing event
population of a few hundred thousand (a million-client sampled run keeps
one in-flight cycle per active participant plus the population model's
wake-ups) that is ~17 list comparisons per operation and the queue tops
out around 0.4M ev/s (``event_round`` in ``BENCH_hot_paths.json``).

A calendar queue [Brown 1988] replaces the heap with timestamp buckets:

* ``push`` computes ``bucket = int(time // width)`` and appends — one
  float divide and a dict access, **no comparisons**;
* ``pop`` drains the earliest bucket in sorted order; sorting a bucket of
  ``m`` entries costs ``m log m`` comparisons *with timsort's constant*,
  so with the adaptive width keeping buckets small the per-event
  comparison count drops from ``log n`` to ``log m ≈ 2–4``.

Equivalence contract (property-tested against the heap oracle in
``tests/test_calendar_queue.py``):

* pop order is exactly ``(time, push-sequence)`` — ties at equal
  timestamps pop in push order, bit-for-bit the heap's order;
* :meth:`push` returns the same mutable ``[time, seq, action]`` handle
  and :meth:`cancel` tombstones it in place with identical idempotence
  semantics (a cancel after pop is a no-op);
* pushes *earlier* than previously popped times are honoured exactly like
  the heap honours them (the queue itself has no notion of "now" — the
  engine's :meth:`~repro.sim.events.EventEngine.schedule` enforces
  monotonicity, and the raw-queue benchmark deliberately pushes scrambled
  times).

:meth:`push_many` amortizes attribute lookups over a batch — the
per-round sampling storm of a sampled-participation run inserts hundreds
of events at once.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from operator import itemgetter
from typing import Callable, Iterable, List, Optional, Tuple

#: Tombstone marking a cancelled entry.  Each queue class checks entries
#: only through its own methods, so the sentinel is module-private.
_CANCELLED = object()

#: Bucket sort key: the timestamp alone.  Entries at equal times always
#: share a bucket (equal time ⇒ equal key at any width) and every path
#: that adds to a bucket keeps equal-time entries in push order, so a
#: *stable* sort by time reproduces the heap's (time, seq) order with
#: float-only C comparisons instead of list comparisons.
_TIME = itemgetter(0)


class CalendarQueue:
    """Bucketed deterministic priority queue of ``(time, action)`` events.

    Drop-in replacement for :class:`~repro.sim.events.EventQueue`
    (``push`` / ``cancel`` / ``pop`` / ``peek_time`` / ``len`` / ``bool``)
    with identical observable behaviour and ``O(1)`` amortized push.
    """

    __slots__ = (
        "_width",
        "_buckets",
        "_keyheap",
        "_cur",
        "_cur_pos",
        "_cur_key",
        "_count",
        "_live",
        "_dead",
        "_high",
        "_low",
    )

    #: Rebuild thresholds: grow when live count doubles past ``_high``,
    #: shrink when it falls under ``_low`` — classic calendar-queue
    #: resizing, amortized O(1) per operation.
    _MIN_HIGH = 256

    def __init__(self, width: float = 1.0) -> None:
        if not (width > 0.0 and math.isfinite(width)):
            raise ValueError(f"bucket width must be finite and > 0, got {width}")
        self._width = float(width)
        self._buckets: dict = {}
        self._keyheap: List[int] = []
        #: The earliest bucket, sorted, drained through a cursor.
        self._cur: List[List] = []
        self._cur_pos = 0
        self._cur_key: Optional[int] = None
        self._count = 0
        self._live = 0
        self._dead = 0
        self._high = self._MIN_HIGH
        self._low = 0

    # ------------------------------------------------------------------
    # the EventQueue API
    # ------------------------------------------------------------------
    def push(self, time: float, action: Callable) -> List:
        time = float(time)
        if not (math.isfinite(time) and time >= 0.0):
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        entry = [time, self._count, action]
        self._count += 1
        self._live += 1
        key = int(time // self._width)
        cur_key = self._cur_key
        if cur_key is not None and key >= cur_key:
            if key == cur_key:
                insort(self._cur, entry, lo=self._cur_pos, key=_TIME)
                return entry
        elif cur_key is not None:
            self._spill_current()
        buckets = self._buckets
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [entry]
            heapq.heappush(self._keyheap, key)
        else:
            bucket.append(entry)
        if self._live > self._high:
            self._rebuild()
        return entry

    def push_many(
        self, events: Iterable[Tuple[float, Callable]]
    ) -> List[List]:
        """Batched :meth:`push`; returns the handles in input order."""
        handles = []
        append_handle = handles.append
        count = self._count
        isfinite = math.isfinite
        width = self._width
        buckets = self._buckets
        keyheap = self._keyheap
        for time, action in events:
            time = float(time)
            if not (isfinite(time) and time >= 0.0):
                raise ValueError(
                    f"event time must be finite and >= 0, got {time}"
                )
            entry = [time, count, action]
            count += 1
            append_handle(entry)
            key = int(time // width)
            cur_key = self._cur_key
            if cur_key is not None:
                if key == cur_key:
                    insort(self._cur, entry, lo=self._cur_pos, key=_TIME)
                    continue
                if key < cur_key:
                    self._spill_current()
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
                heapq.heappush(keyheap, key)
            else:
                bucket.append(entry)
        self._count = count
        self._live += len(handles)
        if self._live > self._high:
            self._rebuild()
        return handles

    def cancel(self, entry: List) -> None:
        """Void a pushed event (idempotent); survivors keep their order."""
        if entry[2] is not _CANCELLED:
            entry[2] = _CANCELLED
            self._live -= 1
            self._dead += 1
            # Compaction: long fault-heavy runs cancel in bulk; rebuild
            # once tombstones dominate so buckets don't grow unboundedly.
            if self._dead > 64 and self._dead >= self._live:
                self._rebuild(width=self._width)

    def pop(self) -> Tuple[float, Callable]:
        while True:
            cur = self._cur
            pos = self._cur_pos
            end = len(cur)
            while pos < end:
                entry = cur[pos]
                pos += 1
                action = entry[2]
                if action is not _CANCELLED:
                    self._cur_pos = pos
                    # Tombstone the popped entry so a late cancel()
                    # against its handle is a harmless no-op.
                    entry[2] = _CANCELLED
                    self._live -= 1
                    if self._live < self._low:
                        self._rebuild()
                    return entry[0], action
                self._dead -= 1
            self._cur_pos = pos
            if not self._advance_bucket():
                raise IndexError("pop from an empty CalendarQueue")

    def peek_time(self) -> Optional[float]:
        while True:
            cur = self._cur
            pos = self._cur_pos
            end = len(cur)
            while pos < end:
                entry = cur[pos]
                if entry[2] is not _CANCELLED:
                    self._cur_pos = pos
                    return entry[0]
                pos += 1
                self._dead -= 1
            self._cur_pos = pos
            if not self._advance_bucket():
                return None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    # A push lands in one of three places (inlined in push/push_many):
    # * the bucket being drained (key == _cur_key): insort into the
    #   undrained tail — a stable by-time insertion point *after* equal
    #   times, which is exactly (time, seq) order since the new entry
    #   holds the highest seq;
    # * a bucket before the current one (key < _cur_key; raw-queue use,
    #   the engine's schedule() never goes backwards): spill the
    #   undrained tail back to its bucket and restart bucket selection,
    #   so the earlier entry pops first;
    # * any other bucket: plain append (no comparisons at all).

    def _spill_current(self) -> None:
        tail = self._cur[self._cur_pos :]
        if tail:
            key = self._cur_key
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = tail
                heapq.heappush(self._keyheap, key)
            else:
                bucket.extend(tail)
        self._cur = []
        self._cur_pos = 0
        self._cur_key = None

    def _advance_bucket(self) -> bool:
        self._cur = []
        self._cur_pos = 0
        self._cur_key = None
        if not self._keyheap:
            return False
        key = heapq.heappop(self._keyheap)
        entries = self._buckets.pop(key)
        if len(entries) > 1:
            entries.sort(key=_TIME)
        self._cur = entries
        self._cur_key = key
        return True

    def _rebuild(self, width: Optional[float] = None) -> None:
        """Re-bucket every live entry (dropping tombstones) at a width
        matched to the current population — amortized O(1) per event."""
        entries: List[List] = []
        append = entries.append
        for i in range(self._cur_pos, len(self._cur)):
            e = self._cur[i]
            if e[2] is not _CANCELLED:
                append(e)
        for bucket in self._buckets.values():
            for e in bucket:
                if e[2] is not _CANCELLED:
                    append(e)
        if width is None:
            width = self._choose_width(entries)
        self._width = width
        self._buckets = {}
        self._keyheap = []
        self._cur = []
        self._cur_pos = 0
        self._cur_key = None
        self._dead = 0
        buckets = self._buckets
        keyheap = self._keyheap
        for e in entries:
            key = int(e[0] // width)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [e]
                heapq.heappush(keyheap, key)
            else:
                bucket.append(e)
        self._high = max(2 * self._live, self._MIN_HIGH)
        self._low = self._live // 4

    def _choose_width(self, entries: List[List]) -> float:
        """Width targeting a few live entries per bucket over the span of
        currently scheduled times.

        A near-term cluster denser than the global average simply lands
        in one oversized bucket — which the sorted-cursor drain plus the
        insort path for same-bucket pushes handles as a small sorted
        "near list" (the ladder-queue bottom rung), so skew degrades
        gracefully instead of needing per-region widths."""
        if len(entries) < 2:
            return self._width
        lo = min(e[0] for e in entries)
        hi = max(e[0] for e in entries)
        span = hi - lo
        if span <= 0.0:
            return self._width
        return max(span * 4.0 / len(entries), span * 1e-12, 1e-12)

    # ------------------------------------------------------------------
    # introspection (tests / benchmarks)
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self._width

    @property
    def num_buckets(self) -> int:
        return len(self._buckets) + (1 if self._cur_key is not None else 0)
