"""Timed fault injection: crash/recover/link schedules on the simulated clock.

The churn models in :mod:`repro.sim.dynamics` are per-*round* boolean
masks and the loss models in :mod:`repro.network.faults` are per-exchange
coin flips; neither can express a worker dying *mid-transfer*, a partner
waiting on a dead peer, or a restarted worker resuming from stale state.
This module provides the missing timed substrate:

* :class:`FaultEvent` — one timed fault: a worker crash/recovery or a
  link going down/up at a simulated time;
* :class:`FaultPlan` — a validated, time-sorted schedule of fault
  events, either scripted (``FaultPlan(n, events=[...])``, the
  "kill worker 3 at t=30 s" case) or drawn from seeded MTTF/MTTR
  exponential arrival processes (:meth:`FaultPlan.from_rates`);
* round-level projections (:meth:`FaultPlan.round_churn`,
  :meth:`FaultPlan.round_loss`) so the synchronous engine's
  :class:`~repro.sim.dynamics.ChurnModel` /
  :class:`~repro.network.faults.LossModel` hooks consume the *same*
  plan the event engine executes — one scenario, two engines;
* :meth:`FaultPlan.parse` — the ``--fault-plan`` CLI grammar
  (``"crash:3@10,recover:3@25"`` or ``"mttf=20,mttr=5"``).

The event engine (:mod:`repro.sim.events`) schedules the plan's events
on its queue: a crash aborts in-flight transfers on both link ends and
frees the reserved link clocks; a recovery restores the worker through
a :mod:`repro.resilience` policy.  An **empty** plan is inert by
contract: engines treat it exactly like ``None`` (zero scheduled
events, zero per-exchange overhead — gated in ``benchmarks``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.faults import LossModel
from repro.sim.dynamics import ChurnModel
from repro.utils.rng import SeedLike, as_generator

#: Recognized fault kinds, in documentation order.
FAULT_KINDS = ("crash", "recover", "link_down", "link_up")


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    ``worker`` is set for ``crash``/``recover`` events, ``link`` (an
    unordered worker pair) for ``link_down``/``link_up`` events.
    """

    time: float
    kind: str
    worker: Optional[int] = None
    link: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not np.isfinite(self.time) or self.time < 0.0:
            raise ValueError(
                f"fault time must be finite and >= 0, got {self.time}"
            )
        if self.kind in ("crash", "recover"):
            if self.worker is None:
                raise ValueError(f"{self.kind} event needs a worker index")
        else:
            if self.link is None:
                raise ValueError(f"{self.kind} event needs a link pair")
            a, b = self.link
            if a == b:
                raise ValueError(f"link events need two distinct workers, got {self.link}")
            # Normalize so (a, b) and (b, a) name the same link.
            object.__setattr__(self, "link", (min(a, b), max(a, b)))


class FaultPlan:
    """A validated, time-sorted schedule of :class:`FaultEvent`.

    Per worker, crash and recover events must alternate (crash first);
    per link, down and up must alternate (down first).  Ties at one
    timestamp keep their listed order.  The plan is immutable once
    built; engines read it, they never mutate it.
    """

    def __init__(
        self, num_workers: int, events: Sequence[FaultEvent] = ()
    ) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        self.num_workers = int(num_workers)
        # Stable sort: simultaneous events keep their listed order, so a
        # scripted plan's tie-breaking is author-controlled.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.time)
        )
        self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rates(
        cls,
        num_workers: int,
        mttf: float,
        mttr: float,
        horizon: float,
        seed: SeedLike = 0,
        min_up: int = 2,
    ) -> "FaultPlan":
        """Draw a plan from per-worker exponential failure/repair processes.

        Each worker alternates up-times ``~ Exp(mean=mttf)`` and
        down-times ``~ Exp(mean=mttr)`` on an independent seeded
        substream (spawn keys — adding a worker never perturbs another
        worker's draws).  Crashes that would leave fewer than ``min_up``
        workers alive are dropped together with their recovery, so the
        cluster always keeps a quorum to recover from.
        """
        if mttf <= 0 or mttr <= 0:
            raise ValueError(f"mttf and mttr must be positive, got {mttf}, {mttr}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not 1 <= min_up <= num_workers:
            raise ValueError(f"min_up must be in [1, {num_workers}], got {min_up}")
        entropy = (
            seed if isinstance(seed, int)
            else int(as_generator(seed).integers(2**31))
        )
        candidates: List[Tuple[float, float, int]] = []  # (down, up, worker)
        for rank in range(num_workers):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy, spawn_key=(rank,))
            )
            t = float(rng.exponential(mttf))
            while t < horizon:
                repair = float(rng.exponential(mttr))
                candidates.append((t, t + repair, rank))
                t = t + repair + float(rng.exponential(mttf))
        # Global sweep: drop crashes that would break the quorum.
        events: List[FaultEvent] = []
        for down, up, rank in sorted(candidates):
            timeline = sorted(
                [(e.time, +1 if e.kind == "recover" else -1) for e in events]
                + [(down, -1)]
            )
            alive, floor = num_workers, num_workers
            for _, delta in timeline:
                alive += delta
                floor = min(floor, alive)
            if floor < min_up:
                continue
            events.append(FaultEvent(down, "crash", worker=rank))
            if up < horizon:
                events.append(FaultEvent(up, "recover", worker=rank))
        return cls(num_workers, events)

    @classmethod
    def parse(
        cls,
        spec: Optional[str],
        num_workers: int,
        horizon: float = 30.0,
        seed: int = 0,
    ) -> Optional["FaultPlan"]:
        """Parse the ``--fault-plan`` grammar.

        ``None``/``""``/``"none"`` → no plan.  ``"mttf=20,mttr=5"``
        (optional ``seed=``, ``min-up=``) → :meth:`from_rates` over
        ``horizon``.  Otherwise a comma-separated event list:
        ``"crash:3@10,recover:3@25,link_down:0-2@5,link_up:0-2@8"``.
        """
        if spec is None or not spec.strip() or spec.strip() == "none":
            return None
        spec = spec.strip()
        if "=" in spec.split(",", 1)[0]:
            params: Dict[str, float] = {}
            for token in spec.split(","):
                key, _, value = token.partition("=")
                key = key.strip().replace("-", "_")
                if key not in ("mttf", "mttr", "seed", "min_up"):
                    raise ValueError(
                        f"unknown fault-plan parameter {key!r} in {spec!r}; "
                        "expected mttf=, mttr=, seed=, min-up="
                    )
                params[key] = float(value)
            if "mttf" not in params or "mttr" not in params:
                raise ValueError(f"rate-based fault plan needs mttf= and mttr=: {spec!r}")
            return cls.from_rates(
                num_workers,
                mttf=params["mttf"],
                mttr=params["mttr"],
                horizon=horizon,
                seed=int(params.get("seed", seed)),
                min_up=int(params.get("min_up", 2)),
            )
        events = []
        for token in spec.split(","):
            token = token.strip()
            try:
                head, _, at = token.partition("@")
                kind, _, target = head.partition(":")
                time = float(at)
                if kind in ("crash", "recover"):
                    events.append(FaultEvent(time, kind, worker=int(target)))
                else:
                    a, _, b = target.partition("-")
                    events.append(FaultEvent(time, kind, link=(int(a), int(b))))
            except (ValueError, TypeError) as error:
                if isinstance(error, ValueError) and "fault" in str(error):
                    raise
                raise ValueError(
                    f"cannot parse fault event {token!r} (expected "
                    "'kind:worker@time' or 'kind:a-b@time'): {spec!r}"
                ) from error
        return cls(num_workers, events)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        worker_down: Dict[int, bool] = {}
        link_down: Dict[Tuple[int, int], bool] = {}
        for event in self.events:
            if event.worker is not None and not (
                0 <= event.worker < self.num_workers
            ):
                raise ValueError(
                    f"fault event names worker {event.worker} but the plan "
                    f"covers workers 0..{self.num_workers - 1}"
                )
            if event.link is not None:
                for node in event.link:
                    if not 0 <= node < self.num_workers:
                        raise ValueError(
                            f"fault event names worker {node} (link "
                            f"{event.link}) but the plan covers workers "
                            f"0..{self.num_workers - 1}"
                        )
            if event.kind == "crash":
                if worker_down.get(event.worker, False):
                    raise ValueError(
                        f"worker {event.worker} crashes twice without a "
                        f"recovery (second crash at t={event.time})"
                    )
                worker_down[event.worker] = True
            elif event.kind == "recover":
                if not worker_down.get(event.worker, False):
                    raise ValueError(
                        f"worker {event.worker} recovers at t={event.time} "
                        "without a preceding crash"
                    )
                worker_down[event.worker] = False
            elif event.kind == "link_down":
                if link_down.get(event.link, False):
                    raise ValueError(
                        f"link {event.link} goes down twice without coming "
                        f"up (second at t={event.time})"
                    )
                link_down[event.link] = True
            else:  # link_up
                if not link_down.get(event.link, False):
                    raise ValueError(
                        f"link {event.link} comes up at t={event.time} "
                        "without going down first"
                    )
                link_down[event.link] = False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing — engines must treat an
        empty plan exactly like no plan (the zero-overhead contract)."""
        return not self.events

    def down_intervals(self, worker: int) -> List[Tuple[float, float]]:
        """Half-open ``[crash, recover)`` intervals of one worker; an
        unrecovered crash yields ``(crash, inf)``."""
        intervals: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for event in self.events:
            if event.worker != worker:
                continue
            if event.kind == "crash":
                start = event.time
            elif event.kind == "recover" and start is not None:
                intervals.append((start, event.time))
                start = None
        if start is not None:
            intervals.append((start, float("inf")))
        return intervals

    def link_down_intervals(self, a: int, b: int) -> List[Tuple[float, float]]:
        """Half-open down intervals of one (unordered) link."""
        key = (min(a, b), max(a, b))
        intervals: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for event in self.events:
            if event.link != key:
                continue
            if event.kind == "link_down":
                start = event.time
            elif event.kind == "link_up" and start is not None:
                intervals.append((start, event.time))
                start = None
        if start is not None:
            intervals.append((start, float("inf")))
        return intervals

    def up_at(self, worker: int, time: float) -> bool:
        return not any(
            start <= time < end for start, end in self.down_intervals(worker)
        )

    def link_up_at(self, a: int, b: int, time: float) -> bool:
        return not any(
            start <= time < end
            for start, end in self.link_down_intervals(a, b)
        )

    @property
    def crash_count(self) -> int:
        return sum(1 for event in self.events if event.kind == "crash")

    # ------------------------------------------------------------------
    # round-level projections (the sync engine's view of the same plan)
    # ------------------------------------------------------------------
    def round_churn(self, round_duration: float) -> "FaultChurn":
        """Project to a per-round :class:`ChurnModel`: a worker is
        inactive in round ``t`` if it is down at any point during
        ``[t*d, (t+1)*d)`` — dying mid-round means missing the round."""
        return FaultChurn(self, round_duration)

    def round_loss(self, round_duration: float) -> "FaultLinkLoss":
        """Project to a per-exchange :class:`LossModel`: an exchange in
        round ``t`` fails iff its link is down at any point during the
        round's window (deterministic, unlike the sampled loss models)."""
        return FaultLinkLoss(self, round_duration)


def _overlaps(
    intervals: Sequence[Tuple[float, float]], start: float, end: float
) -> bool:
    return any(t0 < end and start < t1 for t0, t1 in intervals)


class FaultChurn(ChurnModel):
    """Round-level projection of a :class:`FaultPlan` (availability)."""

    def __init__(self, plan: FaultPlan, round_duration: float) -> None:
        if round_duration <= 0:
            raise ValueError(
                f"round_duration must be positive, got {round_duration}"
            )
        self.plan = plan
        self.round_duration = float(round_duration)
        self.num_workers = plan.num_workers
        self._cache: Dict[int, np.ndarray] = {}

    def active_at(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(
                f"round_index must be non-negative, got {round_index}"
            )
        cached = self._cache.get(round_index)
        if cached is None:
            start = round_index * self.round_duration
            end = start + self.round_duration
            cached = np.array(
                [
                    not _overlaps(self.plan.down_intervals(rank), start, end)
                    for rank in range(self.num_workers)
                ],
                dtype=bool,
            )
            self._cache[round_index] = cached
        return cached.copy()


class FaultLinkLoss(LossModel):
    """Round-level projection of a :class:`FaultPlan` (link failures)."""

    def __init__(self, plan: FaultPlan, round_duration: float) -> None:
        if round_duration <= 0:
            raise ValueError(
                f"round_duration must be positive, got {round_duration}"
            )
        self.plan = plan
        self.round_duration = float(round_duration)
        self.failures = 0
        self.attempts = 0

    def exchange_fails(self, round_index: int, a: int, b: int) -> bool:
        start = round_index * self.round_duration
        end = start + self.round_duration
        failed = _overlaps(self.plan.link_down_intervals(a, b), start, end)
        self.attempts += 1
        self.failures += int(failed)
        return failed
