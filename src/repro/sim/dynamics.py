"""Worker churn: the network dynamics the paper's "R." column claims.

The paper motivates adaptive peer selection with federated workers that
"may join/leave the training randomly due to the battery power, network
connection, network latency, resource availability" and criticizes
DCD-PSGD for requiring an *unchanged* topology.  This module provides the
availability substrate:

* :class:`MarkovChurn` — per-round worker availability as independent
  two-state Markov chains (up/down), deterministic given a seed;
* :class:`AvailabilitySchedule` — an explicit round→active-set table for
  scripted failure scenarios (e.g. "worker 3 dies at round 50").

:class:`repro.algorithms.SAPSPSGD` accepts a churn model: offline workers
skip local SGD and are excluded from the round's matching (Algorithm 3
simply matches the active subgraph), which is exactly why single-peer
random matching tolerates churn while a fixed ring stalls.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class ChurnModel:
    """Interface: which workers are active at round ``t``."""

    def active_at(self, round_index: int) -> np.ndarray:
        """Boolean mask of shape ``(num_workers,)``."""
        raise NotImplementedError


class AlwaysOn(ChurnModel):
    """No churn (the default)."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers

    def active_at(self, round_index: int) -> np.ndarray:
        return np.ones(self.num_workers, dtype=bool)


class MarkovChurn(ChurnModel):
    """Independent up/down Markov chains per worker.

    Parameters
    ----------
    drop_probability:
        P[up → down] per round.
    return_probability:
        P[down → up] per round.  The stationary availability is
        ``return / (drop + return)``.
    min_active:
        Never let the active set fall below this (extra workers are
        revived deterministically, lowest rank first) — keeps rounds
        well-defined, mirroring a coordinator that waits for a quorum.

    The whole trajectory is precomputed lazily and cached, so queries are
    deterministic and O(1) per round regardless of call order.
    """

    def __init__(
        self,
        num_workers: int,
        drop_probability: float = 0.05,
        return_probability: float = 0.3,
        min_active: int = 2,
        rng: SeedLike = None,
    ) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop_probability must be in [0,1], got {drop_probability}")
        if not 0.0 < return_probability <= 1.0:
            raise ValueError(
                f"return_probability must be in (0,1], got {return_probability}"
            )
        if not 0 <= min_active <= num_workers:
            raise ValueError("min_active out of range")
        self.num_workers = num_workers
        self.drop_probability = drop_probability
        self.return_probability = return_probability
        self.min_active = min_active
        self._rng = as_generator(rng)
        self._trajectory: List[np.ndarray] = [
            np.ones(num_workers, dtype=bool)  # round 0: everyone up
        ]

    def _extend_to(self, round_index: int) -> None:
        while len(self._trajectory) <= round_index:
            previous = self._trajectory[-1]
            draws = self._rng.random(self.num_workers)
            nxt = np.where(
                previous,
                draws >= self.drop_probability,  # stay up
                draws < self.return_probability,  # come back
            )
            if nxt.sum() < self.min_active:
                for rank in range(self.num_workers):
                    if nxt.sum() >= self.min_active:
                        break
                    nxt[rank] = True
            self._trajectory.append(nxt)

    def active_at(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(f"round_index must be non-negative, got {round_index}")
        self._extend_to(round_index)
        return self._trajectory[round_index].copy()

    def availability_fraction(self, rounds: int) -> float:
        """Mean fraction of active workers over the first ``rounds``."""
        self._extend_to(max(rounds - 1, 0))
        if rounds <= 0:
            return 1.0
        return float(
            np.mean([mask.mean() for mask in self._trajectory[:rounds]])
        )


#: Valid fill policies of a sparse :class:`AvailabilitySchedule` table.
FILL_POLICIES = ("up", "down", "hold")


class AvailabilitySchedule(ChurnModel):
    """Scripted availability: explicit down-times per worker.

    Two equivalent authoring styles:

    * ``outages`` maps worker rank → list of ``(start_round, end_round)``
      half-open intervals during which the worker is offline;
    * ``rounds`` is a **sparse round table** mapping round index → the
      workers down in that round, with ``fill`` deciding rounds the
      table does not mention: ``"up"`` (everyone active — the default),
      ``"down"`` (everyone offline; for schedules that enumerate the
      active rounds exhaustively) or ``"hold"`` (carry the most recent
      specified round's down-set forward; before the first entry,
      everyone is up).

    The two styles are mutually exclusive.
    """

    def __init__(
        self,
        num_workers: int,
        outages: Optional[Dict[int, Sequence]] = None,
        rounds: Optional[Dict[int, Sequence[int]]] = None,
        fill: str = "up",
    ) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if (outages is None) == (rounds is None):
            raise ValueError(
                "provide exactly one of 'outages' (per-worker intervals) "
                "or 'rounds' (sparse round table)"
            )
        if fill not in FILL_POLICIES:
            raise ValueError(
                f"fill must be one of {FILL_POLICIES}, got {fill!r}"
            )
        self.num_workers = num_workers
        self.fill = fill
        self.outages: Dict[int, List] = {}
        self.rounds: Optional[Dict[int, frozenset]] = None
        if outages is not None:
            for rank, intervals in outages.items():
                self._check_rank(rank, context="outages table")
                cleaned = []
                for start, end in intervals:
                    if end <= start:
                        raise ValueError(f"empty outage interval ({start}, {end})")
                    cleaned.append((int(start), int(end)))
                self.outages[rank] = cleaned
        else:
            table: Dict[int, frozenset] = {}
            for round_index, down in rounds.items():
                if round_index < 0:
                    raise ValueError(
                        f"round index must be non-negative, got {round_index}"
                    )
                down_set = frozenset(int(rank) for rank in down)
                for rank in sorted(down_set):
                    self._check_rank(
                        rank, context=f"round {round_index} of the round table"
                    )
                table[int(round_index)] = down_set
            self.rounds = table
            self._sorted_rounds = sorted(table)

    def _check_rank(self, rank: int, context: str) -> None:
        if not 0 <= rank < self.num_workers:
            raise ValueError(
                f"worker index {rank} in the {context} is out of range for "
                f"a {self.num_workers}-worker schedule (valid: "
                f"0..{self.num_workers - 1})"
            )

    def _down_set(self, round_index: int) -> frozenset:
        """The down-set of ``round_index`` under the fill policy."""
        exact = self.rounds.get(round_index)
        if exact is not None:
            return exact
        if self.fill == "up":
            return frozenset()
        if self.fill == "down":
            return frozenset(range(self.num_workers))
        # "hold": carry the latest specified round forward.
        position = np.searchsorted(self._sorted_rounds, round_index)
        if position == 0:
            return frozenset()  # before the first entry: everyone up
        return self.rounds[self._sorted_rounds[position - 1]]

    def active_at(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(
                f"round_index must be non-negative, got {round_index}"
            )
        mask = np.ones(self.num_workers, dtype=bool)
        if self.rounds is not None:
            for rank in self._down_set(round_index):
                mask[rank] = False
            return mask
        for rank, intervals in self.outages.items():
            for start, end in intervals:
                if start <= round_index < end:
                    mask[rank] = False
                    break
        return mask
