"""Worker churn: the network dynamics the paper's "R." column claims.

The paper motivates adaptive peer selection with federated workers that
"may join/leave the training randomly due to the battery power, network
connection, network latency, resource availability" and criticizes
DCD-PSGD for requiring an *unchanged* topology.  This module provides the
availability substrate:

* :class:`MarkovChurn` — per-round worker availability as independent
  two-state Markov chains (up/down), deterministic given a seed;
* :class:`AvailabilitySchedule` — an explicit round→active-set table for
  scripted failure scenarios (e.g. "worker 3 dies at round 50").

:class:`repro.algorithms.SAPSPSGD` accepts a churn model: offline workers
skip local SGD and are excluded from the round's matching (Algorithm 3
simply matches the active subgraph), which is exactly why single-peer
random matching tolerates churn while a fixed ring stalls.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class ChurnModel:
    """Interface: which workers are active at round ``t``."""

    def active_at(self, round_index: int) -> np.ndarray:
        """Boolean mask of shape ``(num_workers,)``."""
        raise NotImplementedError


class AlwaysOn(ChurnModel):
    """No churn (the default)."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers

    def active_at(self, round_index: int) -> np.ndarray:
        return np.ones(self.num_workers, dtype=bool)


class MarkovChurn(ChurnModel):
    """Independent up/down Markov chains per worker.

    Parameters
    ----------
    drop_probability:
        P[up → down] per round.
    return_probability:
        P[down → up] per round.  The stationary availability is
        ``return / (drop + return)``.
    min_active:
        Never let the active set fall below this (extra workers are
        revived deterministically, lowest rank first) — keeps rounds
        well-defined, mirroring a coordinator that waits for a quorum.

    The whole trajectory is precomputed lazily and cached, so queries are
    deterministic and O(1) per round regardless of call order.
    """

    def __init__(
        self,
        num_workers: int,
        drop_probability: float = 0.05,
        return_probability: float = 0.3,
        min_active: int = 2,
        rng: SeedLike = None,
    ) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop_probability must be in [0,1], got {drop_probability}")
        if not 0.0 < return_probability <= 1.0:
            raise ValueError(
                f"return_probability must be in (0,1], got {return_probability}"
            )
        if not 0 <= min_active <= num_workers:
            raise ValueError("min_active out of range")
        self.num_workers = num_workers
        self.drop_probability = drop_probability
        self.return_probability = return_probability
        self.min_active = min_active
        self._rng = as_generator(rng)
        self._trajectory: List[np.ndarray] = [
            np.ones(num_workers, dtype=bool)  # round 0: everyone up
        ]

    def _extend_to(self, round_index: int) -> None:
        while len(self._trajectory) <= round_index:
            previous = self._trajectory[-1]
            draws = self._rng.random(self.num_workers)
            nxt = np.where(
                previous,
                draws >= self.drop_probability,  # stay up
                draws < self.return_probability,  # come back
            )
            if nxt.sum() < self.min_active:
                for rank in range(self.num_workers):
                    if nxt.sum() >= self.min_active:
                        break
                    nxt[rank] = True
            self._trajectory.append(nxt)

    def active_at(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(f"round_index must be non-negative, got {round_index}")
        self._extend_to(round_index)
        return self._trajectory[round_index].copy()

    def availability_fraction(self, rounds: int) -> float:
        """Mean fraction of active workers over the first ``rounds``."""
        self._extend_to(max(rounds - 1, 0))
        if rounds <= 0:
            return 1.0
        return float(
            np.mean([mask.mean() for mask in self._trajectory[:rounds]])
        )


class AvailabilitySchedule(ChurnModel):
    """Scripted availability: explicit down-times per worker.

    ``outages`` maps worker rank → list of ``(start_round, end_round)``
    half-open intervals during which the worker is offline.
    """

    def __init__(self, num_workers: int, outages: Dict[int, Sequence] ) -> None:
        if num_workers < 2:
            raise ValueError("need at least 2 workers")
        self.num_workers = num_workers
        self.outages: Dict[int, List] = {}
        for rank, intervals in outages.items():
            if not 0 <= rank < num_workers:
                raise ValueError(f"worker {rank} out of range")
            cleaned = []
            for start, end in intervals:
                if end <= start:
                    raise ValueError(f"empty outage interval ({start}, {end})")
                cleaned.append((int(start), int(end)))
            self.outages[rank] = cleaned

    def active_at(self, round_index: int) -> np.ndarray:
        mask = np.ones(self.num_workers, dtype=bool)
        for rank, intervals in self.outages.items():
            for start, end in intervals:
                if start <= round_index < end:
                    mask[rank] = False
                    break
        return mask
