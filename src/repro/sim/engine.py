"""Experiment engine: run an algorithm for T rounds and log the paper's axes.

:func:`run_experiment` wires partitions + model factory + network +
algorithm together, executes synchronous rounds, and records
``(round, train_loss, val_accuracy, traffic_MB, comm_time_s,
consensus_distance)`` at every evaluation point — the raw series behind
Figs. 3, 4 and 6 and Tables III and IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.data.datasets import Dataset
from repro.network.transport import SimulatedNetwork
from repro.nn.arena import ParameterArena
from repro.nn.module import Module
from repro.sim.trainer import TrainingWorker
from repro.utils.dtypes import resolve_dtype
from repro.utils.rng import SeedLike, as_generator, spawn_generators

if TYPE_CHECKING:  # avoid a runtime cycle with repro.algorithms
    from repro.algorithms.base import DistributedAlgorithm


@dataclass
class ExperimentConfig:
    """Hyperparameters of one run (defaults sized for fast simulation).

    ``lr_milestones``/``lr_gamma`` implement the step decay conventional
    for the paper's longer CIFAR runs: at each milestone *round*, every
    worker's learning rate is multiplied by ``lr_gamma``.
    """

    rounds: int = 100
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    eval_every: int = 10
    seed: int = 0
    lr_milestones: Optional[List[int]] = None
    lr_gamma: float = 0.1
    #: Back all worker replicas with one contiguous
    #: :class:`repro.nn.ParameterArena` so flat-vector access is
    #: zero-copy and rounds vectorize over the replica matrix.  Numerics
    #: are bit-identical either way; disable only to exercise the
    #: per-model fallback path.
    use_arena: bool = True
    #: Numeric dtype of the training substrate: ``"float64"`` (default,
    #: bit-identical to the historical trajectories) or ``"float32"``
    #: (halves replica memory/traffic, matches the fp32 tensors the
    #: measured systems exchange).  ``make_workers`` casts shards, models
    #: and the arena accordingly.
    dtype: str = "float64"
    #: Local SGD steps per communication round.  The paper uses 1; larger
    #: values amortize the (batched) local compute across fewer
    #: exchanges.  When set above 1, ``run_experiment`` applies it to any
    #: algorithm exposing a ``local_steps`` attribute (SAPS-PSGD,
    #: FedAvg/S-FedAvg) — the workload-level knob wins over constructor
    #: defaults.  At the default of 1 constructed algorithms keep their
    #: own values (e.g. FedAvg's McMahan-style E=5).
    local_steps: int = 1
    #: Execution engine: ``"sync"`` (default — round-synchronous
    #: :func:`run_experiment`, bit-identical to the historical
    #: trajectories) or ``"event"`` (the discrete-event engine of
    #: :mod:`repro.sim.events`: simulated wall-clock, asynchronous
    #: variants, contention).  The field is advisory — dispatchers
    #: (cli, presets) read it; :func:`run_experiment` itself *is* the
    #: sync engine.
    engine: str = "sync"
    #: Fault-injection spec (advisory, like ``engine``): ``None`` for a
    #: fault-free run, else a :meth:`repro.sim.faults.FaultPlan.parse`
    #: string — scripted events ("crash:1@3.0,recover:1@8.0") or seeded
    #: MTTF/MTTR exponentials ("mttf=20,mttr=5").  Dispatchers (cli,
    #: presets) parse it; an empty plan leaves runs bit-identical.
    fault_plan: Optional[str] = None
    #: Per-exchange deadline in simulated seconds before a survivor's
    #: retry/backoff machinery kicks in (event engine, faults active).
    exchange_timeout: float = 5.0
    #: Recovery policy for crashed workers: "checkpoint", "peer" or
    #: "cold" (:mod:`repro.resilience`).
    recovery: str = "checkpoint"
    #: Participation mode: ``"full"`` (every worker / the classic
    #: fraction-C draw) or ``"sampled"`` (exactly ``sample_size`` clients
    #: per round — or in flight, on the event engine).  Only the
    #: FedAvg-family algorithms support sampling; dispatchers validate.
    participation: str = "full"
    #: Participants per round (requires ``participation="sampled"``).
    sample_size: Optional[int] = None
    #: Client-availability spec for
    #: :func:`repro.sim.population.parse_population` — ``None``/"none"
    #: (always on), ``"always"``, or ``"renewal:up=60,down=30"``.
    population: Optional[str] = None
    #: Event-engine scheduler: ``"calendar"`` (bucketed, fast) or
    #: ``"heap"`` (the binary-heap oracle).  Identical event order.
    scheduler: str = "calendar"
    #: Arena implementation: ``"dense"`` (:class:`repro.nn.ParameterArena`)
    #: or ``"sharded"`` (:class:`repro.nn.ShardedArena`; bit-identical in
    #: its full-capacity dense mode, LRU-sharded at million scale).
    arena: str = "dense"

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if self.eval_every <= 0:
            raise ValueError(f"eval_every must be positive, got {self.eval_every}")
        if self.lr_gamma <= 0:
            raise ValueError(f"lr_gamma must be positive, got {self.lr_gamma}")
        if self.local_steps < 1:
            raise ValueError(
                f"local_steps must be >= 1, got {self.local_steps}"
            )
        if self.lr_milestones is not None:
            self.lr_milestones = sorted(int(m) for m in self.lr_milestones)
        self.dtype = resolve_dtype(self.dtype).name
        if self.engine not in ("sync", "event"):
            raise ValueError(
                f"engine must be 'sync' or 'event', got {self.engine!r}"
            )
        if self.exchange_timeout <= 0:
            raise ValueError(
                f"exchange_timeout must be positive, got {self.exchange_timeout}"
            )
        if self.recovery not in ("checkpoint", "peer", "cold"):
            raise ValueError(
                f"recovery must be 'checkpoint', 'peer' or 'cold', "
                f"got {self.recovery!r}"
            )
        if self.participation not in ("full", "sampled"):
            raise ValueError(
                f"participation must be 'full' or 'sampled', "
                f"got {self.participation!r}"
            )
        if self.sample_size is not None:
            if int(self.sample_size) < 1:
                raise ValueError(
                    f"sample_size must be >= 1, got {self.sample_size}"
                )
            if self.participation != "sampled":
                raise ValueError(
                    "sample_size is set but participation is 'full' — pass "
                    "participation='sampled' (CLI: --participation sampled)"
                )
        elif self.participation == "sampled":
            raise ValueError(
                "participation='sampled' needs sample_size (CLI: "
                "--sample-size K)"
            )
        if self.population is not None:
            # Fail at config time with the parser's friendly message,
            # not deep inside a dispatcher.
            from repro.sim.population import parse_population

            parse_population(self.population, 1, seed=self.seed)
        if self.scheduler not in ("calendar", "heap"):
            raise ValueError(
                f"scheduler must be 'calendar' or 'heap', "
                f"got {self.scheduler!r}"
            )
        if self.arena not in ("dense", "sharded"):
            raise ValueError(
                f"arena must be 'dense' or 'sharded', got {self.arena!r}"
            )


@dataclass
class RoundRecord:
    """One evaluation point along a run.

    ``compute_time_s`` / ``total_time_s`` are only populated when the
    experiment runs with a :class:`repro.sim.timing.ComputeModel`
    (otherwise zero / equal to ``comm_time_s``).
    """

    round_index: int
    train_loss: float
    val_loss: float
    val_accuracy: float
    worker_traffic_mb: float
    server_traffic_mb: float
    comm_time_s: float
    consensus_distance: float
    compute_time_s: float = 0.0
    total_time_s: float = 0.0


@dataclass
class ExperimentResult:
    """Full trajectory of one (algorithm, workload) run."""

    algorithm: str
    config: ExperimentConfig
    history: List[RoundRecord] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.history[-1].val_accuracy if self.history else float("nan")

    @property
    def best_accuracy(self) -> float:
        if not self.history:
            return float("nan")
        return max(record.val_accuracy for record in self.history)

    def series(self, x_attr: str, y_attr: str = "val_accuracy"):
        """Paired series for plotting, e.g. ``series("worker_traffic_mb")``
        is Fig. 4's curve for this algorithm."""
        xs = [getattr(record, x_attr) for record in self.history]
        ys = [getattr(record, y_attr) for record in self.history]
        return xs, ys

    def cost_to_reach(
        self, target_accuracy: float, cost_attr: str = "worker_traffic_mb"
    ) -> Optional[float]:
        """Table IV's query: the first recorded cost at which validation
        accuracy reached ``target_accuracy`` (None if never reached)."""
        for record in self.history:
            if record.val_accuracy >= target_accuracy:
                return getattr(record, cost_attr)
        return None


def make_workers(
    model_factory: Callable[[], Module],
    partitions: Sequence[Dataset],
    config: ExperimentConfig,
) -> List[TrainingWorker]:
    """Instantiate one :class:`TrainingWorker` per shard.

    Each worker gets an independent data-sampling RNG derived from the
    experiment seed; model initializations are later overwritten by the
    algorithm's setup (all workers start from worker 0's weights).

    Unless ``config.use_arena`` is False, all replicas are adopted into
    one :class:`repro.nn.ParameterArena` (rows in rank order) so the
    algorithms take their vectorized fast paths.

    ``config.dtype`` flows through here: shards are cast once so batches
    arrive in the training dtype, and the arena is allocated in it
    (adoption re-homogenizes model parameters, so even a factory that
    ignores ``dtype`` lands on the configured precision when the arena
    is on).  The float64 default makes every cast a no-op.
    """
    dtype = resolve_dtype(config.dtype)
    streams = spawn_generators(config.seed, len(partitions))
    workers = []
    for rank, (shard, stream) in enumerate(zip(partitions, streams)):
        workers.append(
            TrainingWorker(
                rank=rank,
                model=model_factory(),
                shard=shard.astype(dtype),
                batch_size=config.batch_size,
                lr=config.lr,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
                rng=stream,
            )
        )
    if config.use_arena:
        if config.arena == "sharded":
            # Full-capacity ShardedArena: dense-mode storage and
            # behaviour are the parent class verbatim, so trajectories
            # stay bit-identical (the sharding machinery only engages
            # below capacity — million-scale sampled runs).
            from repro.nn.sharded import ShardedArena

            arena_cls = ShardedArena
        else:
            arena_cls = ParameterArena
        arena_cls.adopt_models(
            [worker.model for worker in workers], dtype=dtype
        )
        for worker in workers:
            worker.optimizer.attach_flat_storage(
                worker.model._flat_view, worker.model._flat_grad_view
            )
    return workers


def evaluate_consensus(
    algorithm: "DistributedAlgorithm", dataset: Dataset
) -> tuple:
    """Evaluate the consensus (average) model without disturbing training.

    With a batched :class:`~repro.sim.cluster.ClusterTrainer` attached,
    the averaged row is forwarded directly through the batched kernels'
    eval path — no snapshot/restore dance on a borrowed replica.  The
    fallback borrows and restores worker 0 as before; both paths produce
    identical numbers (same weights through the same GEMMs)."""
    vector = algorithm.consensus_model()
    trainer = getattr(algorithm, "cluster_trainer", None)
    if trainer is not None:
        return trainer.evaluate_vector(vector, dataset)
    probe = algorithm.workers[0]
    saved = probe.snapshot_params()
    probe.set_params(vector)
    loss, accuracy = probe.evaluate(dataset)
    probe.set_params(saved)
    return loss, accuracy


def run_experiment(
    algorithm: "DistributedAlgorithm",
    partitions: Sequence[Dataset],
    validation: Dataset,
    model_factory: Callable[[], Module],
    config: ExperimentConfig,
    network: Optional[SimulatedNetwork] = None,
    record_initial: bool = True,
    round_callback: Optional[Callable[[int, float], None]] = None,
    snapshot_callback: Optional[Callable[[RoundRecord], None]] = None,
    compute_model=None,
) -> ExperimentResult:
    """Run ``algorithm`` for ``config.rounds`` synchronous rounds.

    ``round_callback(round_index, train_loss)`` fires after every round;
    ``snapshot_callback(record)`` fires at every evaluation point — hooks
    for live progress reporting, early stopping shims, or custom logging
    without subclassing the engine.

    ``compute_model`` (a :class:`repro.sim.timing.ComputeModel`) adds
    per-round compute time: each synchronous round costs the slowest
    participant's local-step time.  Algorithms expose their participants
    via ``last_participants`` (None = everyone) and their per-round local
    step count via ``local_steps`` (default 1).
    """
    if network is None:
        network = SimulatedNetwork(num_workers=len(partitions))
    # Evaluation must run in the training dtype too (a float64 validation
    # set would upcast every eval forward pass); no-op at float64.
    validation = validation.astype(resolve_dtype(config.dtype))
    if config.local_steps > 1 and hasattr(algorithm, "local_steps"):
        # The workload-level knob is authoritative when set: the recorded
        # config and the executed schedule must agree.
        algorithm.local_steps = config.local_steps
    workers = make_workers(model_factory, partitions, config)
    algorithm.setup(workers, network, rng=as_generator(config.seed))

    result = ExperimentResult(algorithm=algorithm.name, config=config)

    compute_seconds = 0.0

    # Telemetry (no-cost when off): besides the wall-time phase spans the
    # deeper layers record, the sync engine lays each round out on a
    # simulated clock — per-participant compute intervals (when a compute
    # model is present) followed by the round's barrier communication
    # time — so per-worker compute/comm/idle lanes and the
    # ``worker.<rank>.*`` utilization mirrors exist on this engine too.
    sim_trace = None
    comm_base = 0.0
    sim_now = 0.0
    if obs.enabled():
        from repro.sim.events import EventTrace

        sim_trace = EventTrace(len(workers))
        sim_trace.sink = obs.recorder().trace

    def snapshot(round_index: int, train_loss: float) -> None:
        with obs.phase("eval"):
            val_loss, val_accuracy = evaluate_consensus(algorithm, validation)
        comm_seconds = network.total_time_seconds()
        record = RoundRecord(
            round_index=round_index,
            train_loss=train_loss,
            val_loss=val_loss,
            val_accuracy=val_accuracy,
            worker_traffic_mb=network.meter.mean_worker_traffic_mb(),
            server_traffic_mb=network.server_traffic_mb(),
            comm_time_s=comm_seconds,
            consensus_distance=algorithm.consensus_distance(),
            compute_time_s=compute_seconds,
            total_time_s=comm_seconds + compute_seconds,
        )
        result.history.append(record)
        if snapshot_callback is not None:
            snapshot_callback(record)

    if record_initial:
        snapshot(round_index=-1, train_loss=float("nan"))

    running_loss = float("nan")
    milestones = set(config.lr_milestones or [])
    for round_index in range(config.rounds):
        if round_index in milestones:
            for worker in workers:
                worker.optimizer.lr *= config.lr_gamma
        with obs.phase("round"):
            running_loss = algorithm.run_round(round_index)
        round_compute = 0.0
        if compute_model is not None:
            participants = getattr(algorithm, "last_participants", None)
            if participants is None:
                participants = range(len(workers))
            steps = getattr(algorithm, "local_steps", 1)
            round_compute = compute_model.round_time(
                round_index, list(participants), steps
            )
            compute_seconds += round_compute
        if sim_trace is not None:
            comm_now = network.total_time_seconds()
            round_comm = comm_now - comm_base
            comm_base = comm_now
            obs.observe("round.comm_s", round_comm)
            if compute_model is not None:
                obs.observe("round.compute_s", round_compute)
            participants = getattr(algorithm, "last_participants", None)
            if participants is None:
                participants = range(len(workers))
            participants = list(participants)
            steps = getattr(algorithm, "local_steps", 1)
            start = sim_now
            compute_end = start
            if compute_model is not None:
                # step_time queries are deterministic per (round, rank),
                # so re-asking for per-worker spans perturbs nothing.
                for rank in participants:
                    dt = float(
                        compute_model.step_time(round_index, rank, steps)
                    )
                    sim_trace.add(rank, "compute", start, start + dt)
                    if start + dt > compute_end:
                        compute_end = start + dt
            # The sync barrier: every participant communicates (or waits)
            # until the round's slowest transfer finishes.
            for rank in participants:
                sim_trace.add(rank, "comm", compute_end, compute_end + round_comm)
            sim_now = compute_end + round_comm
            obs.mirror_network(network)
            obs.mirror_arena(getattr(algorithm, "arena", None))
            obs.end_round(round_index)
        if round_callback is not None:
            round_callback(round_index, running_loss)
        is_last = round_index == config.rounds - 1
        if (round_index + 1) % config.eval_every == 0 or is_last:
            snapshot(round_index, running_loss)
    if sim_trace is not None:
        obs.gauge("run.rounds", float(config.rounds))
        obs.record_worker_timeline(sim_trace, sim_now)
    return result
