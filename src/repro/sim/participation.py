"""One participation/residency layer shared by every algorithm family.

PR 8 grew sampled participation piecemeal: FedAvg's round sampler, the
AsyncFedAvg K-seat pool, :class:`~repro.algorithms.sampled`'s copy of
the same pool, and the async cycle gating each re-implemented "who
participates this round, and which arena rows must stay resident while
they do".  This module is the one home for that logic:

* **selection** — the per-round participant draw (classic fraction-``C``
  permutation, exact-``K`` rejection sampling, population-gated
  :meth:`~repro.sim.population.ClientPopulation.sample_up`) and the
  seat-pool draws of the asynchronous variants;
* **gating** — next-up wake times, up-filtering of gossip peer pools,
  and up-restricted uniform peer picks (AD-PSGD's communication thread);
* **residency** — pin/acquire scopes over a
  :class:`~repro.nn.sharded.ShardedArena` so an exchange's endpoint rows
  cannot be torn by LRU eviction mid-use (no-ops on a dense arena);
* **the support table** — the single record of which algorithm supports
  which participation/arena feature, driving the CLI's fail-fast
  validation instead of ad-hoc per-dispatcher checks.

Every method consumes the caller's RNG exactly as the code it replaced
did, so the legacy paths (full participation, no population, dense
arena) stay bit-identical to the historical trajectories.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim.population import ClientPopulation


class ParticipationContext:
    """Population + sampler + arena residency contract for one run.

    Parameters
    ----------
    num_clients:
        Enrolled population size.
    population:
        Optional :class:`~repro.sim.population.ClientPopulation`
        availability process; ``None`` means everyone is always up.
    sample_size:
        Exact participants per round (or seats in flight); ``None``
        falls back to the fraction draw (or full participation).
    fraction:
        Classic FedAvg fraction-``C`` participation; only consulted when
        ``sample_size`` is ``None``.  ``None`` means "all clients".
    round_duration:
        Simulated seconds per synchronous round — converts a round index
        into the population-clock time of its participant draw.
    """

    #: The one support table: which CLI algorithm keys accept which
    #: participation/arena feature on which engine.  Dispatchers call
    #: :meth:`check_support` instead of hand-rolling the lists.
    SUPPORT = {
        "sampled": {
            "sync": ("fedavg", "s-fedavg", "saps-psgd"),
            "event": ("fedavg",),
        },
        "population": {
            "sync": ("fedavg", "s-fedavg", "saps-psgd"),
            "event": ("fedavg", "saps-psgd", "d-psgd"),
        },
        "sharded-arena": {
            "sync": (
                "psgd", "topk-psgd", "fedavg", "s-fedavg", "d-psgd",
                "dcd-psgd", "saps-psgd",
            ),
            "event": ("fedavg", "saps-psgd", "d-psgd"),
        },
    }

    #: CLI flag spelling per feature, for the fail-fast error text.
    _FLAGS = {
        "sampled": "--participation sampled",
        "population": "--population-model",
        "sharded-arena": "--arena sharded",
    }

    def __init__(
        self,
        num_clients: int,
        population: Optional[ClientPopulation] = None,
        sample_size: Optional[int] = None,
        fraction: Optional[float] = None,
        round_duration: float = 1.0,
    ) -> None:
        num_clients = int(num_clients)
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if population is not None and population.num_clients != num_clients:
            raise ValueError(
                f"population models {population.num_clients} clients, "
                f"context has {num_clients}"
            )
        if sample_size is not None and int(sample_size) < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if round_duration <= 0:
            raise ValueError(
                f"round_duration must be > 0, got {round_duration}"
            )
        self.num_clients = num_clients
        self.population = population
        self.sample_size = None if sample_size is None else int(sample_size)
        self.fraction = None if fraction is None else float(fraction)
        self.round_duration = float(round_duration)

    # ------------------------------------------------------------------
    # support table
    # ------------------------------------------------------------------
    @classmethod
    def check_support(
        cls,
        algorithm: str,
        engine: str = "sync",
        participation: str = "full",
        population: Optional[str] = None,
        arena: str = "dense",
    ) -> None:
        """Fail fast on unsupported feature/algorithm combinations.

        Raises :class:`ValueError` with a friendly message naming the
        flag, the algorithm and the supported set (the CLI converts it
        to ``SystemExit``); silently returns for supported combos.
        """
        wanted = []
        if participation == "sampled":
            wanted.append("sampled")
        if population not in (None, "", "none"):
            wanted.append("population")
        if arena == "sharded":
            wanted.append("sharded-arena")
        for feature in wanted:
            supported = cls.SUPPORT[feature].get(engine, ())
            if algorithm not in supported:
                raise ValueError(
                    f"{cls._FLAGS[feature]} supports "
                    f"{', '.join(supported)} on the {engine} engine — "
                    f"{algorithm} does not; see the support matrix in the "
                    f"README's \"Scaling to millions of clients\" section"
                )

    # ------------------------------------------------------------------
    # round-synchronous selection
    # ------------------------------------------------------------------
    @property
    def is_sampling(self) -> bool:
        """Whether selection deviates from classic full/fraction draws."""
        return self.sample_size is not None or self.population is not None

    def select_round(
        self, round_index: int, rng: np.random.Generator
    ) -> List[int]:
        """The round's participant set (sorted client ids).

        Byte-for-byte the draw FedAvg's ``_select`` historically made:
        the classic fraction-``C`` permutation when neither
        ``sample_size`` nor ``population`` is set, otherwise a
        population-gated ``sample_up`` (with a single-uniform fallback
        on a deep outage) or an exact-``K`` rejection draw.
        """
        if not self.is_sampling:
            if self.fraction is None:
                return list(range(self.num_clients))
            count = max(1, int(round(self.fraction * self.num_clients)))
            return sorted(
                rng.choice(self.num_clients, size=count, replace=False).tolist()
            )
        count = self.sample_size
        if count is None:
            fraction = 1.0 if self.fraction is None else self.fraction
            count = max(1, int(round(fraction * self.num_clients)))
        count = min(count, self.num_clients)
        if self.population is not None:
            time = float(round_index) * self.round_duration
            chosen = self.population.sample_up(time, count, rng)
            if chosen:
                return chosen
            # Nobody reachable this round (deep outage): fall through to
            # a single uniform pick so the round stays well-defined.
            return [int(rng.integers(self.num_clients))]
        # sample_size without a population model: uniform over everyone,
        # O(count) for any enrolment (no O(n) permutation).
        chosen_set: set = set()
        while len(chosen_set) < count:
            for c in rng.integers(
                0, self.num_clients, size=count - len(chosen_set)
            ):
                chosen_set.add(int(c))
        return sorted(chosen_set)

    def round_mask(
        self, round_index: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean participation mask for the round (gossip families)."""
        mask = np.zeros(self.num_clients, dtype=bool)
        mask[self.select_round(round_index, rng)] = True
        return mask

    # ------------------------------------------------------------------
    # seat pools (asynchronous sampled participation)
    # ------------------------------------------------------------------
    def initial_seats(
        self,
        now: float,
        count: int,
        rng: np.random.Generator,
        lazy: bool = False,
    ) -> List[int]:
        """The starting seat holders of a K-seat participant pool.

        ``lazy=False`` draws a permutation sample (the worker-backed
        AsyncFedAvg convention); ``lazy=True`` rejection-samples so the
        draw is O(count) at any enrolment (the worker-less lazy stack).
        With a population both defer to ``sample_up``.
        """
        count = min(int(count), self.num_clients)
        if self.population is not None:
            return [int(c) for c in self.population.sample_up(now, count, rng)]
        if lazy:
            chosen: set = set()
            while len(chosen) < count:
                for c in rng.integers(
                    0, self.num_clients, size=count - len(chosen)
                ):
                    chosen.add(int(c))
            return sorted(chosen)
        return sorted(
            rng.choice(self.num_clients, size=count, replace=False).tolist()
        )

    def draw_seat(
        self, now: float, rng: np.random.Generator, active: Set[int]
    ) -> Optional[int]:
        """One fresh (up, idle) client for a freed seat, or ``None``.

        The 64-attempt rejection loop of the K-seat pools, verbatim: a
        draw already holding a seat is rejected; an empty population
        draw (deep outage) gives up immediately.
        """
        for _ in range(64):
            if self.population is not None:
                drawn = self.population.sample_up(now, 1, rng)
                if not drawn:
                    return None
                candidate = int(drawn[0])
            else:
                candidate = int(rng.integers(self.num_clients))
            if candidate not in active:
                return candidate
        return None

    # ------------------------------------------------------------------
    # availability gating (gossip families)
    # ------------------------------------------------------------------
    def is_up(self, client: int, now: float) -> bool:
        if self.population is None:
            return True
        return self.population.is_up(client, now)

    def wake_at(self, client: int, now: float) -> float:
        """Earliest time >= ``now`` the client can start a cycle."""
        if self.population is None:
            return float(now)
        return self.population.next_up(client, now)

    def prune_down(
        self, pool: Sequence[int], now: float
    ) -> Tuple[List[int], List[int]]:
        """Split a waiting-peer pool into (still up, gone down).

        Without a population everyone is up and the pool is returned
        unchanged — the legacy gossip path, bit-identical.
        """
        if self.population is None:
            return list(pool), []
        up: List[int] = []
        down: List[int] = []
        for peer in pool:
            (up if self.population.is_up(peer, now) else down).append(peer)
        return up, down

    def pick_peer(
        self, rank: int, rng: np.random.Generator, now: float
    ) -> Optional[int]:
        """A uniform peer != ``rank``, restricted to the up population.

        Without a population this is AD-PSGD's classic shifted-uniform
        draw (one RNG consumption, bit-identical).  With one, down peers
        are rejected for up to 64 attempts; ``None`` means no up peer
        was found and the caller should skip the averaging this cycle.
        """
        if self.num_clients < 2:
            return None
        if self.population is None:
            peer = int(rng.integers(self.num_clients - 1))
            if peer >= rank:
                peer += 1
            return peer
        for _ in range(64):
            peer = int(rng.integers(self.num_clients - 1))
            if peer >= rank:
                peer += 1
            if self.population.is_up(peer, now):
                return peer
        return None

    # ------------------------------------------------------------------
    # arena residency contract
    # ------------------------------------------------------------------
    @contextmanager
    def resident(self, arena, clients: Iterable[int]):
        """Pin ``clients``' rows resident for the scope's duration.

        On a :class:`~repro.nn.sharded.ShardedArena` this acquires (and
        on exit releases) a pin per client, so LRU eviction cannot tear
        an exchange's endpoint rows mid-use; eviction-time writeback
        after release is the arena's business.  On a dense arena (or
        ``None``) the scope is a no-op — the legacy path, bit-identical.
        """
        clients = list(clients)
        pinned = arena is not None and hasattr(arena, "acquire")
        if pinned:
            arena.acquire(clients)
        try:
            yield arena
        finally:
            if pinned:
                arena.release(clients)

    @staticmethod
    def client_row(arena, client: int) -> np.ndarray:
        """Client ``client``'s flat parameter row on any arena flavour."""
        row = getattr(arena, "row", None)
        if row is not None:
            return row(client)
        return arena.data[client]
