"""Client-population availability as an arrival process on the clock.

The churn models in :mod:`repro.sim.dynamics` answer "is worker ``w``
active in cycle ``c``?" — a per-cycle mask.  That abstraction breaks at
population scale twice over: it is indexed by *cycle*, which only exists
for workers already running, and evaluating it eagerly for millions of
enrolled clients per round is O(enrolment).  This module models
availability the way the event engine thinks — as per-client alternating
up/down *intervals* on the simulated wall clock:

* :class:`RenewalPopulation` — each client alternates exponentially
  distributed up and down periods (an alternating renewal process) from
  its own :func:`~repro.utils.rng.derive_seed` substream, so any
  client's entire availability timeline is deterministic, independent of
  query order, and generated *lazily*: memory scales with clients
  actually queried, never with enrolment.
* :class:`AlwaysUp` — the degenerate always-available population.
* :func:`parse_population` — CLI spec parser
  (``"always"`` | ``"renewal:up=60,down=30"``).

Queries the algorithms use:

* :meth:`is_up` / :meth:`next_up` — gate an async worker's next cycle on
  its own availability timeline (replacing the per-cycle mask skip);
* :meth:`sample_up` — draw round participants from the *currently up*
  clients by rejection sampling against the caller's RNG stream, which
  is O(sample) for any enrolment, not O(enrolment).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import derive_seed


class ClientPopulation:
    """Interface: per-client availability on the simulated clock."""

    def __init__(self, num_clients: int) -> None:
        num_clients = int(num_clients)
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        self.num_clients = num_clients

    def is_up(self, client: int, time: float) -> bool:
        raise NotImplementedError

    def next_up(self, client: int, time: float) -> float:
        """Earliest ``t >= time`` at which ``client`` is up."""
        raise NotImplementedError

    def sample_up(
        self, time: float, count: int, rng: np.random.Generator
    ) -> List[int]:
        """``count`` distinct clients up at ``time``, drawn uniformly via
        ``rng`` (sorted).  Returns fewer when the up set is (effectively)
        smaller — callers treat a short draw as a thin round."""
        raise NotImplementedError

    def _check_client(self, client: int) -> int:
        client = int(client)
        if not 0 <= client < self.num_clients:
            raise ValueError(
                f"client {client} out of range [0, {self.num_clients})"
            )
        return client


class AlwaysUp(ClientPopulation):
    """Every client available at every time."""

    def is_up(self, client: int, time: float) -> bool:
        self._check_client(client)
        return True

    def next_up(self, client: int, time: float) -> float:
        self._check_client(client)
        return float(time)

    def sample_up(
        self, time: float, count: int, rng: np.random.Generator
    ) -> List[int]:
        count = min(int(count), self.num_clients)
        if count <= 0:
            return []
        # Rejection-sample distinct ids: O(count) for any enrolment
        # (permutation-based choice-without-replacement is O(n)).
        chosen: set = set()
        while len(chosen) < count:
            need = count - len(chosen)
            draws = rng.integers(0, self.num_clients, size=2 * need)
            for c in draws:
                if c not in chosen:
                    chosen.add(int(c))
                    if len(chosen) == count:
                        break
        return sorted(chosen)


class RenewalPopulation(ClientPopulation):
    """Alternating exponential up/down renewal process per client.

    Each client ``c`` has an independent timeline derived from
    ``derive_seed(seed, "population", c)``: an initial state drawn from
    the stationary availability ``mean_up / (mean_up + mean_down)``,
    then alternating ``Exp(mean_up)`` up and ``Exp(mean_down)`` down
    periods.  Timelines are extended lazily and cached per touched
    client, so a million-client population costs memory only for the
    clients actually queried.
    """

    def __init__(
        self,
        num_clients: int,
        mean_up: float = 60.0,
        mean_down: float = 30.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_clients)
        if mean_up <= 0 or mean_down <= 0:
            raise ValueError(
                f"mean_up and mean_down must be > 0, got {mean_up}, {mean_down}"
            )
        self.mean_up = float(mean_up)
        self.mean_down = float(mean_down)
        self.seed = int(seed)
        self.availability = self.mean_up / (self.mean_up + self.mean_down)
        #: client -> (initially_up, toggle times ascending, generator)
        self._timelines: Dict[int, tuple] = {}

    @property
    def touched_clients(self) -> int:
        return len(self._timelines)

    def _timeline(self, client: int, until: float):
        state = self._timelines.get(client)
        if state is None:
            gen = np.random.default_rng(
                derive_seed(self.seed, "population", client)
            )
            initially_up = bool(gen.random() < self.availability)
            state = (initially_up, [], gen)
            self._timelines[client] = state
        initially_up, toggles, gen = state
        # Extend past `until`: toggle parity gives the current state, the
        # exponential draw for that state gives the next toggle.
        while not toggles or toggles[-1] <= until:
            up = initially_up == (len(toggles) % 2 == 0)
            mean = self.mean_up if up else self.mean_down
            last = toggles[-1] if toggles else 0.0
            toggles.append(last + float(gen.exponential(mean)))
        return initially_up, toggles

    def is_up(self, client: int, time: float) -> bool:
        client = self._check_client(client)
        time = float(time)
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        initially_up, toggles = self._timeline(client, time)
        return initially_up == (bisect_right(toggles, time) % 2 == 0)

    def next_up(self, client: int, time: float) -> float:
        client = self._check_client(client)
        time = float(time)
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        initially_up, toggles = self._timeline(client, time)
        index = bisect_right(toggles, time)
        if initially_up == (index % 2 == 0):
            return time
        # Down at `time`: up again at the next toggle.
        return toggles[index]

    def sample_up(
        self, time: float, count: int, rng: np.random.Generator
    ) -> List[int]:
        count = min(int(count), self.num_clients)
        if count <= 0:
            return []
        chosen: set = set()
        # Rejection sampling against the up set.  The attempt budget
        # covers availabilities down to ~2% before giving up and
        # returning a short draw (a thin round, not an error).
        attempts = 0
        budget = 50 * count + 200
        while len(chosen) < count and attempts < budget:
            for c in rng.integers(0, self.num_clients, size=count - len(chosen)):
                attempts += 1
                c = int(c)
                if c not in chosen and self.is_up(c, time):
                    chosen.add(c)
        return sorted(chosen)


def parse_population(
    spec: Optional[str], num_clients: int, seed: int = 0
) -> Optional[ClientPopulation]:
    """Build a population model from a CLI spec string.

    ``None`` / ``"none"`` -> ``None`` (no population gating);
    ``"always"`` -> :class:`AlwaysUp`;
    ``"renewal:up=60,down=30"`` -> :class:`RenewalPopulation` (either
    key may be omitted; defaults up=60, down=30).
    """
    if spec is None:
        return None
    text = spec.strip().lower()
    if text in ("", "none"):
        return None
    if text == "always":
        return AlwaysUp(num_clients)
    if text.startswith("renewal"):
        mean_up, mean_down = 60.0, 30.0
        _, _, params = text.partition(":")
        if params:
            for item in params.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep:
                    raise ValueError(
                        f"bad population parameter {item!r} in {spec!r} "
                        f"(expected key=value)"
                    )
                try:
                    number = float(value)
                except ValueError:
                    raise ValueError(
                        f"bad population value {value!r} in {spec!r}"
                    ) from None
                if key == "up":
                    mean_up = number
                elif key == "down":
                    mean_down = number
                else:
                    raise ValueError(
                        f"unknown population key {key!r} in {spec!r} "
                        f"(known: up, down)"
                    )
        return RenewalPopulation(
            num_clients, mean_up=mean_up, mean_down=mean_down, seed=seed
        )
    raise ValueError(
        f"unknown population model {spec!r} — expected 'always', "
        f"'renewal:up=<s>,down=<s>' or 'none'"
    )
