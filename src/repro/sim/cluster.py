"""Cluster-level batched local SGD: one engine step for all workers.

:class:`ClusterTrainer` replaces the hot-path Python loop of n
independent :meth:`~repro.sim.trainer.TrainingWorker.local_step` calls
with a handful of matrix operations over the shared
:class:`~repro.nn.arena.ParameterArena`:

1. **Stacked sampling** — one RNG draw per worker through the worker's
   *own* :class:`~repro.data.loader.DataLoader` (stream-identical to the
   per-worker loop, churn included), stacked into an ``(n, B, d)`` batch
   tensor (``(n, B, c, h, w)`` for the conv-family models).
2. **Batched forward/backward** — a :class:`~repro.nn.batched.BatchedSequential`
   compiled over the arena's weight views (see :mod:`repro.nn.batched`),
   so gradients land directly in ``arena.grads``.
3. **Matrix optimizer update** — SGD with optional momentum / Nesterov /
   weight decay applied to ``arena.data`` as whole-matrix operations,
   with momentum state held as one ``(n, N)`` velocity matrix.

The batched step is **bit-identical** to the per-worker loop (enforced
by ``tests/test_cluster_trainer.py``): each worker's GEMMs run through
the same BLAS kernels on the same operands, element-wise ops are
shape-blind, and the optimizer algebra is replayed in the loop's
evaluation order.  :meth:`batched_steps` amortizes ``k`` local steps
between communication rounds; :meth:`compute_gradients` is the batched
analogue of :meth:`~repro.sim.trainer.TrainingWorker.compute_gradient`
for gradient-averaging algorithms; :meth:`evaluate_vector` forwards an
arbitrary flat model (e.g. the consensus average) through the batched
kernels without borrowing and restoring a worker replica.

:meth:`ClusterTrainer.build` returns ``None`` whenever exact
equivalence cannot be guaranteed — no shared arena, a layer without a
batched kernel (batch norm, residual wiring), heterogeneous batch sizes
or optimizer hyperparameters, pre-existing per-worker momentum state —
and callers keep the per-worker loop, which doubles as the equivalence
oracle.  As of the batched conv kernels, Linear/Conv2d/pooling/Flatten/
Dropout chains all compile, so the TinyCNN and MnistCNN/Cifar10CNN
presets ride the batched path alongside the MLP family.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.data.loader import DataLoader
from repro.nn.arena import ParameterArena, shared_arena
from repro.nn.batched import BatchedCrossEntropyLoss, build_batched_model
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.sim.trainer import TrainingWorker, evaluate_forward


class ClusterTrainer:
    """Batched local-step engine over one arena's worth of workers."""

    def __init__(
        self,
        workers: Sequence[TrainingWorker],
        arena: ParameterArena,
        net,
        sampler: str = "per-worker",
        sampler_seed: int = 0,
    ) -> None:
        if sampler not in ("per-worker", "vectorized"):
            raise ValueError(f"unknown sampler {sampler!r}")
        self.workers: List[TrainingWorker] = list(workers)
        self.arena = arena
        self.net = net
        #: ``"per-worker"`` (default) replays each worker's own loader
        #: RNG — stream-identical to the per-worker loop, the batched
        #: engine's equivalence guarantee.  ``"vectorized"`` draws ALL
        #: workers' batch indices from one dedicated generator in a
        #: single call — **stream-breaking by design** (sampling with
        #: replacement, different trajectories than the loop) to remove
        #: the per-worker ``Generator.choice`` floor that dominates the
        #: batched step at n >= 1024.
        self.sampler = sampler
        self._sampler_rng = (
            np.random.default_rng(sampler_seed)
            if sampler == "vectorized"
            else None
        )
        self._shard_lengths = np.array(
            [len(worker.loader.dataset) for worker in workers], dtype=np.float64
        )
        self._batch_size = workers[0].loader.batch_size
        self.loss_fn = BatchedCrossEntropyLoss()
        optimizer = self.workers[0].optimizer
        self.momentum = optimizer.momentum
        self.weight_decay = optimizer.weight_decay
        self.nesterov = optimizer.nesterov
        #: ``(n, N)`` momentum state, allocated on first momentum update.
        self._velocity: Optional[np.ndarray] = None
        #: Update scratch reused across steps (avoids a fresh
        #: replica-matrix-sized temporary per step).
        self._scratch: Optional[np.ndarray] = None
        #: Persistent ``(n, B, d)`` / ``(n, B)`` batch buffers filled by
        #: stacked sampling (no per-step stack of n small arrays).
        self._feature_buf: Optional[np.ndarray] = None
        self._label_buf: Optional[np.ndarray] = None
        #: Hoisted per-worker sampler bindings
        #: ``(rng.choice, features, labels, len, batch_size)`` — the
        #: sampling loop runs n times per step, so attribute chains are
        #: resolved once here.  Sound because a worker's loader keeps its
        #: generator and dataset for the lifetime of a run.
        self._samplers = [
            (
                worker.loader._rng.choice,
                worker.loader.dataset.features,
                worker.loader.dataset.labels,
                len(worker.loader.dataset),
                worker.loader.batch_size,
            )
            for worker in self.workers
        ]
        # Bind every parameter's grad to its arena view once: batched
        # backward writes into arena.grads, and the per-parameter API
        # (get_flat_grads, optimizer loops) must see those writes instead
        # of treating the segments as never-touched.
        for worker in self.workers:
            worker.model.zero_grad()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        workers: Sequence[TrainingWorker],
        arena: Optional[ParameterArena] = None,
        sampler: str = "per-worker",
        sampler_seed: int = 0,
    ) -> Optional["ClusterTrainer"]:
        """A trainer for ``workers``, or ``None`` when the batched path
        cannot reproduce the per-worker loop exactly.

        ``sampler="vectorized"`` opts into the one-generator cluster
        sampler (stream-breaking, see :class:`ClusterTrainer`); all
        other build requirements are unchanged."""
        workers = list(workers)
        if not workers:
            return None
        if arena is None:
            arena = shared_arena([worker.model for worker in workers])
        if arena is None or arena.num_workers != len(workers):
            return None
        optimizers = [worker.optimizer for worker in workers]
        if any(type(optimizer) is not SGD for optimizer in optimizers):
            return None
        reference = optimizers[0]
        hyper = (reference.momentum, reference.weight_decay, reference.nesterov)
        if any(
            (opt.momentum, opt.weight_decay, opt.nesterov) != hyper
            for opt in optimizers[1:]
        ):
            return None
        # Per-parameter momentum state accumulated outside the trainer
        # would silently diverge from the (n, N) velocity matrix.
        if any(
            velocity is not None
            for optimizer in optimizers
            for velocity in optimizer._velocities
        ):
            return None
        if any(type(worker.loss_fn) is not CrossEntropyLoss for worker in workers):
            return None
        loaders = [worker.loader for worker in workers]
        if any(type(loader) is not DataLoader for loader in loaders):
            return None
        # Stacked sampling replays loader.sample's exact draw per worker
        # but gathers into one buffer, so transforms (which see per-batch
        # arrays) are out of scope.
        if any(loader.transform is not None for loader in loaders):
            return None
        batch_size = loaders[0].batch_size
        if any(loader.batch_size != batch_size for loader in loaders):
            return None
        # Flat feature vectors (MLP/logistic) and (c, h, w) images (the
        # conv-family kernels) both stack into (n, B, ...) buffers.
        sample_shape = loaders[0].dataset.features.shape[1:]
        if len(sample_shape) not in (1, 3):
            return None
        feature_dtype = loaders[0].dataset.features.dtype
        label_dtype = loaders[0].dataset.labels.dtype
        if any(
            loader.dataset.features.shape[1:] != sample_shape
            or loader.dataset.features.dtype != feature_dtype
            or loader.dataset.labels.dtype != label_dtype
            for loader in loaders
        ):
            return None
        net = build_batched_model(arena)
        if net is None:
            return None
        return cls(workers, arena, net, sampler=sampler, sampler_seed=sampler_seed)

    # ------------------------------------------------------------------
    # batched local computation
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _normalize_ranks(self, ranks) -> Optional[np.ndarray]:
        """Row-index array for a worker subset; ``None`` means all."""
        if ranks is None:
            return None
        rows = np.asarray(ranks, dtype=np.intp).ravel()
        if rows.size == 0:
            raise ValueError("ranks must name at least one worker")
        if np.unique(rows).size != rows.size:
            raise ValueError("ranks must be unique")
        if rows.size == self.num_workers and np.array_equal(
            rows, np.arange(self.num_workers)
        ):
            return None
        return rows

    def _stacked_batch(self, rank_list: Sequence[int]):
        """One mini-batch per worker, stacked along a new worker axis.

        Each worker's indices come from its *own* loader RNG via the
        same ``choice`` call :meth:`DataLoader.sample` makes (stream
        identity, churn included); the features/labels are gathered
        straight into persistent ``(n, B, d)`` buffers instead of
        stacking n freshly allocated batch arrays."""
        count = len(rank_list)
        if self._feature_buf is None:
            loader = self.workers[0].loader
            dataset = loader.dataset
            self._feature_buf = np.empty(
                (self.num_workers, loader.batch_size) + dataset.features.shape[1:],
                dtype=dataset.features.dtype,
            )
            self._label_buf = np.empty(
                (self.num_workers, loader.batch_size), dtype=dataset.labels.dtype
            )
        features = self._feature_buf[:count]
        labels = self._label_buf[:count]
        if self._sampler_rng is not None:
            # Vectorized sampler: one generator, one draw for the whole
            # cluster — (count, B) uniform variates scaled by each
            # worker's shard length (sampling WITH replacement;
            # stream-breaking by design, see the class docstring).
            draws = self._sampler_rng.random((count, self._batch_size))
            lengths = self._shard_lengths[np.asarray(rank_list)]
            batch_indices = (draws * lengths[:, None]).astype(np.intp)
            samplers = self._samplers
            for position, rank in enumerate(rank_list):
                _, shard_features, shard_labels, _, _ = samplers[rank]
                shard_features.take(
                    batch_indices[position], axis=0, out=features[position]
                )
                shard_labels.take(
                    batch_indices[position], axis=0, out=labels[position]
                )
            return features, labels
        samplers = self._samplers
        for position, rank in enumerate(rank_list):
            choice, shard_features, shard_labels, length, batch = samplers[rank]
            indices = choice(length, size=batch, replace=False)
            shard_features.take(indices, axis=0, out=features[position])
            shard_labels.take(indices, axis=0, out=labels[position])
        return features, labels

    #: Target resident size of one execution block (rows × model bytes):
    #: big enough to amortize kernel dispatch, small enough that a
    #: block's weights/grads/activations stay cache-resident (read once
    #: for forward + backward + update) instead of streaming the full
    #: replica matrix through DRAM several times per step.  16 MB was
    #: the empirical sweet spot at n = 1024 on the bench MLP.
    BLOCK_BYTES = 16 << 20

    def _block_rows(self) -> int:
        row_bytes = max(self.arena.model_size * self.arena.dtype.itemsize, 1)
        return max(1, self.BLOCK_BYTES // row_bytes)

    def _forward_backward(self, row_sel, rank_list: Sequence[int]) -> np.ndarray:
        """Sample + forward + backward for one row selection; gradients
        land in ``arena.grads`` (overwritten — no zero fill needed, each
        parameter is written exactly once per pass)."""
        features, labels = self._stacked_batch(rank_list)
        logits = self.net.forward(features, row_sel)
        losses, grad = self.loss_fn(logits, labels)
        self.net.backward(grad, row_sel)
        return losses

    def _run_pass(self, ranks, apply_update: bool) -> np.ndarray:
        """One sampled forward/backward pass for all (or ``ranks``)
        workers, optionally followed by the optimizer update.

        The full-cluster path executes in worker blocks
        (:attr:`BLOCK_BYTES`) purely for cache locality — workers are
        independent, so blocking changes no values.  Returns the
        per-worker losses and records each worker's ``last_loss`` (and
        ``steps_taken`` when updating), mirroring the per-worker loop.
        """
        rows = self._normalize_ranks(ranks)
        if rows is None:
            total = self.num_workers
            losses = np.empty(total, dtype=np.float64)
            block = self._block_rows()
            for start in range(0, total, block):
                stop = min(start + block, total)
                selection = slice(start, stop)
                losses[selection] = self._forward_backward(
                    selection, range(start, stop)
                )
                if apply_update:
                    self._apply_update(selection)
            step_workers = self.workers
        else:
            rank_list = rows.tolist()
            losses = self._forward_backward(rows, rank_list)
            if apply_update:
                self._apply_update(rows)
            step_workers = [self.workers[rank] for rank in rank_list]
        # tolist() hands back exact python floats in one C pass (same
        # values worker.local_step would have returned).
        for worker, loss in zip(step_workers, losses.tolist()):
            if apply_update:
                worker.steps_taken += 1
            worker.last_loss = loss
        return losses

    def step(self, ranks=None) -> np.ndarray:
        """One mini-batch SGD step for all (or ``ranks``) workers at once.

        Returns the per-worker losses, in ``ranks`` order (float64, each
        entry exactly what ``worker.local_step()`` would have returned).
        """
        return self._run_pass(ranks, apply_update=True)

    def batched_steps(self, k: int, ranks=None) -> np.ndarray:
        """``k`` local steps amortized between communication rounds.

        Returns a ``(len(ranks), k)`` loss matrix whose C-order flatten
        is worker-major — the exact order the per-worker
        ``for worker: for step:`` loop emits, so round-loss averages
        match the loop bit for bit.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rows = self._normalize_ranks(ranks)
        count = self.num_workers if rows is None else rows.size
        losses = np.empty((count, k), dtype=np.float64)
        for step_index in range(k):
            losses[:, step_index] = self.step(rows)
        return losses

    def compute_gradients(self, ranks=None) -> np.ndarray:
        """Batched :meth:`TrainingWorker.compute_gradient`: sample one
        mini-batch per worker and leave the gradients in ``arena.grads``
        (rows of workers outside ``ranks`` keep their previous content).
        Returns the per-worker losses without applying any update."""
        return self._run_pass(ranks, apply_update=False)

    # ------------------------------------------------------------------
    # the matrix optimizer update
    # ------------------------------------------------------------------
    def _scratch_rows(self, count: int) -> np.ndarray:
        """Persistent ``(count, N)`` update scratch (grown on demand)."""
        if self._scratch is None or self._scratch.shape[0] < count:
            self._scratch = np.empty(
                (count, self.arena.model_size), dtype=self.arena.dtype
            )
        return self._scratch[:count]

    def _apply_update(self, rows) -> None:
        """SGD/momentum/weight-decay over whole arena rows.

        ``rows`` is ``None``, a slice (in-place on arena views) or an
        index array (gather/scatter).  Replays the per-parameter loop's
        evaluation order elementwise (decay into the gradient, velocity
        update, scaled subtraction), so the result is bit-identical to n
        independent optimizer steps.
        """
        arena = self.arena
        is_view = rows is None or isinstance(rows, slice)
        if rows is None:
            params = arena.data
            grads = arena.grads
            step_workers = self.workers
        elif is_view:
            params = arena.data[rows]
            grads = arena.grads[rows]
            step_workers = self.workers[rows]
        else:
            params = arena.data[rows]
            grads = arena.grads[rows]
            step_workers = [self.workers[rank] for rank in rows]
        scratch = self._scratch_rows(params.shape[0])
        rates = np.array(
            [worker.optimizer.lr for worker in step_workers], dtype=arena.dtype
        )[:, None]
        if self.weight_decay:
            # wd·X + G == G + wd·X exactly (IEEE addition commutes), so
            # the decayed gradient can build in the scratch buffer.
            np.multiply(params, self.weight_decay, out=scratch)
            scratch += grads
            grads = scratch
        if self.momentum:
            if self._velocity is None:
                self._velocity = np.zeros_like(arena.data)
            velocity = self._velocity[rows] if rows is not None else self._velocity
            velocity *= self.momentum
            velocity += grads
            if not is_view:
                self._velocity[rows] = velocity
            if self.nesterov:
                update = grads + self.momentum * velocity
            else:
                update = velocity
        else:
            update = grads
        np.multiply(update, rates, out=scratch)
        params -= scratch
        if not is_view:
            arena.data[rows] = params

    # ------------------------------------------------------------------
    # consensus evaluation
    # ------------------------------------------------------------------
    def evaluate_vector(
        self, vector: np.ndarray, dataset: Dataset, batch_size: int = 256
    ) -> tuple:
        """``(mean_loss, top1_accuracy)`` of one flat model vector.

        Forwards ``vector`` directly through the batched kernels' eval
        path — no worker replica is borrowed, mutated or restored.  Runs
        the same shared evaluation loop as
        :meth:`TrainingWorker.evaluate` (:func:`evaluate_forward`), cast
        once against the vector dtype.
        """
        vector = np.asarray(vector)
        return evaluate_forward(
            lambda features: self.net.forward_vector(vector, features),
            dataset,
            vector.dtype,
            batch_size,
        )
