"""Cluster-level batched local SGD: one engine step for all workers.

:class:`ClusterTrainer` replaces the hot-path Python loop of n
independent :meth:`~repro.sim.trainer.TrainingWorker.local_step` calls
with a handful of matrix operations over the shared
:class:`~repro.nn.arena.ParameterArena`:

1. **Stacked sampling** — one RNG draw per worker through the worker's
   *own* :class:`~repro.data.loader.DataLoader` (stream-identical to the
   per-worker loop, churn included), stacked into an ``(n, B, d)`` batch
   tensor (``(n, B, c, h, w)`` for the conv-family models).
2. **Batched forward/backward** — a :class:`~repro.nn.batched.BatchedSequential`
   compiled over the arena's weight views (see :mod:`repro.nn.batched`),
   so gradients land directly in ``arena.grads``.
3. **Matrix optimizer update** — SGD with optional momentum / Nesterov /
   weight decay applied to ``arena.data`` as whole-matrix operations,
   with momentum state held as one ``(n, N)`` velocity matrix.

The batched step is **bit-identical** to the per-worker loop (enforced
by ``tests/test_cluster_trainer.py``): each worker's GEMMs run through
the same BLAS kernels on the same operands, element-wise ops are
shape-blind, and the optimizer algebra is replayed in the loop's
evaluation order.  :meth:`batched_steps` amortizes ``k`` local steps
between communication rounds; :meth:`compute_gradients` is the batched
analogue of :meth:`~repro.sim.trainer.TrainingWorker.compute_gradient`
for gradient-averaging algorithms; :meth:`evaluate_vector` forwards an
arbitrary flat model (e.g. the consensus average) through the batched
kernels without borrowing and restoring a worker replica.

:meth:`ClusterTrainer.build` returns ``None`` whenever exact
equivalence cannot be guaranteed — no shared arena, a layer without a
batched kernel (batch norm, residual wiring), heterogeneous batch sizes
or optimizer hyperparameters, pre-existing per-worker momentum state —
and callers keep the per-worker loop, which doubles as the equivalence
oracle.  As of the batched conv kernels, Linear/Conv2d/pooling/Flatten/
Dropout chains all compile, so the TinyCNN and MnistCNN/Cifar10CNN
presets ride the batched path alongside the MLP family.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.data.loader import DataLoader
from repro.nn.arena import ParameterArena, shared_arena
from repro.nn.batched import (
    BatchedAvgPool2d,
    BatchedConv2d,
    BatchedCrossEntropyLoss,
    BatchedFlatten,
    BatchedGlobalAvgPool2d,
    BatchedMaxPool2d,
    build_batched_model,
)
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.obs import phase as obs_phase
from repro.sim.trainer import TrainingWorker, evaluate_forward
from repro.utils import parallel


class _ExecContext:
    """One thread's private execution state for block passes.

    The batched kernels cache forward state on themselves (inputs, cols,
    masks) and the trainer reuses sampling/update buffers — state that
    must not be shared between concurrently executing blocks.  Each
    worker thread therefore gets its own kernel chain (views into the
    *same* arena — building one is cheap, reshaped slices only), loss
    head and buffers; rows written through different contexts are
    disjoint, so the arena itself needs no locking.
    """

    __slots__ = ("net", "loss_fn", "feature_buf", "label_buf", "scratch")

    def __init__(self, net, loss_fn) -> None:
        self.net = net
        self.loss_fn = loss_fn
        self.feature_buf: Optional[np.ndarray] = None
        self.label_buf: Optional[np.ndarray] = None
        self.scratch: Optional[np.ndarray] = None

    def batch_buffers(self, count: int, feature_shape, feature_dtype,
                      label_dtype):
        """Persistent ``(count, B, ...)`` batch buffers, grown on demand."""
        if self.feature_buf is None or self.feature_buf.shape[0] < count:
            self.feature_buf = np.empty(
                (count,) + feature_shape, dtype=feature_dtype
            )
            self.label_buf = np.empty(
                (count, feature_shape[0]), dtype=label_dtype
            )
        return self.feature_buf[:count], self.label_buf[:count]

    def scratch_rows(self, count: int, model_size: int, dtype) -> np.ndarray:
        """Persistent ``(count, N)`` update scratch (grown on demand)."""
        if self.scratch is None or self.scratch.shape[0] < count:
            self.scratch = np.empty((count, model_size), dtype=dtype)
        return self.scratch[:count]


class ClusterTrainer:
    """Batched local-step engine over one arena's worth of workers."""

    def __init__(
        self,
        workers: Sequence[TrainingWorker],
        arena: ParameterArena,
        net,
        sampler: str = "per-worker",
        sampler_seed: int = 0,
    ) -> None:
        if sampler not in ("per-worker", "vectorized"):
            raise ValueError(f"unknown sampler {sampler!r}")
        self.workers: List[TrainingWorker] = list(workers)
        self.arena = arena
        self.net = net
        #: ``"per-worker"`` (default) replays each worker's own loader
        #: RNG — stream-identical to the per-worker loop, the batched
        #: engine's equivalence guarantee.  ``"vectorized"`` draws ALL
        #: workers' batch indices from one dedicated generator in a
        #: single call — **stream-breaking by design** (sampling with
        #: replacement, different trajectories than the loop) to remove
        #: the per-worker ``Generator.choice`` floor that dominates the
        #: batched step at n >= 1024.
        self.sampler = sampler
        self._sampler_rng = (
            np.random.default_rng(sampler_seed)
            if sampler == "vectorized"
            else None
        )
        self._shard_lengths = np.array(
            [len(worker.loader.dataset) for worker in workers], dtype=np.float64
        )
        self._batch_size = workers[0].loader.batch_size
        self.loss_fn = BatchedCrossEntropyLoss()
        optimizer = self.workers[0].optimizer
        self.momentum = optimizer.momentum
        self.weight_decay = optimizer.weight_decay
        self.nesterov = optimizer.nesterov
        #: ``(n, N)`` momentum state, allocated on first momentum update
        #: (hoisted before any parallel block dispatch — see
        #: :meth:`_run_pass` — so block threads never race the alloc).
        self._velocity: Optional[np.ndarray] = None
        #: Per-thread execution contexts (kernel chain + sampling/update
        #: buffers).  The building thread owns the primary context; pool
        #: threads get their own lazily (:meth:`_context`).  Keyed by
        #: thread ident — pool threads persist across calls, so contexts
        #: amortize over the run.
        self._contexts = {threading.get_ident(): _ExecContext(net, self.loss_fn)}
        self._context_lock = threading.Lock()
        #: Hoisted per-worker sampler bindings
        #: ``(rng.choice, features, labels, len, batch_size)`` — the
        #: sampling loop runs n times per step, so attribute chains are
        #: resolved once here.  Sound because a worker's loader keeps its
        #: generator and dataset for the lifetime of a run.
        self._samplers = [
            (
                worker.loader._rng.choice,
                worker.loader.dataset.features,
                worker.loader.dataset.labels,
                len(worker.loader.dataset),
                worker.loader.batch_size,
            )
            for worker in self.workers
        ]
        # Bind every parameter's grad to its arena view once: batched
        # backward writes into arena.grads, and the per-parameter API
        # (get_flat_grads, optimizer loops) must see those writes instead
        # of treating the segments as never-touched.
        for worker in self.workers:
            worker.model.zero_grad()
        #: Per-worker transient-workspace bytes (the conv/pool kernels'
        #: stacked im2col patch matrices) — folded into the block-size
        #: computation so one block's weights *and* its im2col workspace
        #: fit the cache budget together (:meth:`_block_rows`).
        self._workspace_bytes = self._workspace_bytes_per_worker()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        workers: Sequence[TrainingWorker],
        arena: Optional[ParameterArena] = None,
        sampler: str = "per-worker",
        sampler_seed: int = 0,
    ) -> Optional["ClusterTrainer"]:
        """A trainer for ``workers``, or ``None`` when the batched path
        cannot reproduce the per-worker loop exactly.

        ``sampler="vectorized"`` opts into the one-generator cluster
        sampler (stream-breaking, see :class:`ClusterTrainer`); all
        other build requirements are unchanged."""
        workers = list(workers)
        if not workers:
            return None
        if arena is None:
            arena = shared_arena([worker.model for worker in workers])
        if arena is None or arena.num_workers != len(workers):
            return None
        optimizers = [worker.optimizer for worker in workers]
        if any(type(optimizer) is not SGD for optimizer in optimizers):
            return None
        reference = optimizers[0]
        hyper = (reference.momentum, reference.weight_decay, reference.nesterov)
        if any(
            (opt.momentum, opt.weight_decay, opt.nesterov) != hyper
            for opt in optimizers[1:]
        ):
            return None
        # Per-parameter momentum state accumulated outside the trainer
        # would silently diverge from the (n, N) velocity matrix.
        if any(
            velocity is not None
            for optimizer in optimizers
            for velocity in optimizer._velocities
        ):
            return None
        if any(type(worker.loss_fn) is not CrossEntropyLoss for worker in workers):
            return None
        loaders = [worker.loader for worker in workers]
        if any(type(loader) is not DataLoader for loader in loaders):
            return None
        # Stacked sampling replays loader.sample's exact draw per worker
        # but gathers into one buffer, so transforms (which see per-batch
        # arrays) are out of scope.
        if any(loader.transform is not None for loader in loaders):
            return None
        batch_size = loaders[0].batch_size
        if any(loader.batch_size != batch_size for loader in loaders):
            return None
        # Flat feature vectors (MLP/logistic) and (c, h, w) images (the
        # conv-family kernels) both stack into (n, B, ...) buffers.
        sample_shape = loaders[0].dataset.features.shape[1:]
        if len(sample_shape) not in (1, 3):
            return None
        feature_dtype = loaders[0].dataset.features.dtype
        label_dtype = loaders[0].dataset.labels.dtype
        if any(
            loader.dataset.features.shape[1:] != sample_shape
            or loader.dataset.features.dtype != feature_dtype
            or loader.dataset.labels.dtype != label_dtype
            for loader in loaders
        ):
            return None
        net = build_batched_model(arena)
        if net is None:
            return None
        return cls(workers, arena, net, sampler=sampler, sampler_seed=sampler_seed)

    # ------------------------------------------------------------------
    # batched local computation
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _normalize_ranks(self, ranks) -> Optional[np.ndarray]:
        """Row-index array for a worker subset; ``None`` means all."""
        if ranks is None:
            return None
        rows = np.asarray(ranks, dtype=np.intp).ravel()
        if rows.size == 0:
            raise ValueError("ranks must name at least one worker")
        if np.unique(rows).size != rows.size:
            raise ValueError("ranks must be unique")
        if rows.size == self.num_workers and np.array_equal(
            rows, np.arange(self.num_workers)
        ):
            return None
        return rows

    def _context(self) -> _ExecContext:
        """The calling thread's execution context (created on demand).

        The inline (single-thread) path always lands on the primary
        context created at construction; pool threads build their own
        kernel chain over the same arena once and keep it."""
        ident = threading.get_ident()
        ctx = self._contexts.get(ident)
        if ctx is None:
            net = build_batched_model(self.arena)
            assert net is not None, "batched model compiled at build time"
            ctx = _ExecContext(net, BatchedCrossEntropyLoss())
            with self._context_lock:
                self._contexts[ident] = ctx
        return ctx

    def _draw_vectorized_indices(self, rank_list: Sequence[int]) -> np.ndarray:
        """Vectorized-sampler batch indices for ``rank_list``: one draw
        from the single cluster generator — (count, B) uniform variates
        scaled by each worker's shard length (sampling WITH replacement;
        stream-breaking by design, see the class docstring).  The shared
        generator is order-sensitive, so :meth:`_run_pass` calls this on
        the dispatching thread, block by block in block order, *before*
        any parallel execution — the stream is identical at every thread
        count."""
        draws = self._sampler_rng.random((len(rank_list), self._batch_size))
        lengths = self._shard_lengths[np.asarray(rank_list)]
        return (draws * lengths[:, None]).astype(np.intp)

    def _stacked_batch(
        self,
        rank_list: Sequence[int],
        ctx: _ExecContext,
        batch_indices: Optional[np.ndarray] = None,
    ):
        """One mini-batch per worker, stacked along a new worker axis.

        Each worker's indices come from its *own* loader RNG via the
        same ``choice`` call :meth:`DataLoader.sample` makes (stream
        identity, churn included) — or from pre-drawn ``batch_indices``
        on the vectorized-sampler path; the features/labels are gathered
        straight into the context's persistent ``(n, B, d)`` buffers
        instead of stacking n freshly allocated batch arrays.  A worker
        belongs to exactly one block per pass, so its generator is never
        driven from two threads at once and each stream advances exactly
        as in the serial loop."""
        count = len(rank_list)
        loader = self.workers[0].loader
        dataset = loader.dataset
        features, labels = ctx.batch_buffers(
            count,
            (loader.batch_size,) + dataset.features.shape[1:],
            dataset.features.dtype,
            dataset.labels.dtype,
        )
        samplers = self._samplers
        if batch_indices is None and self._sampler_rng is not None:
            batch_indices = self._draw_vectorized_indices(rank_list)
        if batch_indices is not None:
            for position, rank in enumerate(rank_list):
                _, shard_features, shard_labels, _, _ = samplers[rank]
                shard_features.take(
                    batch_indices[position], axis=0, out=features[position]
                )
                shard_labels.take(
                    batch_indices[position], axis=0, out=labels[position]
                )
            return features, labels
        for position, rank in enumerate(rank_list):
            choice, shard_features, shard_labels, length, batch = samplers[rank]
            indices = choice(length, size=batch, replace=False)
            shard_features.take(indices, axis=0, out=features[position])
            shard_labels.take(indices, axis=0, out=labels[position])
        return features, labels

    #: Target resident size of one execution block (rows × model bytes,
    #: plus the per-row transient workspace of the conv/pool kernels):
    #: big enough to amortize kernel dispatch, small enough that a
    #: block's weights/grads/activations stay cache-resident (read once
    #: for forward + backward + update) instead of streaming the full
    #: replica matrix through DRAM several times per step.  16 MB was
    #: the empirical sweet spot at n = 1024 on the bench MLP.
    BLOCK_BYTES = 16 << 20

    def _workspace_bytes_per_worker(self) -> int:
        """Per-worker bytes of the batched kernels' dominant transient
        buffers: the stacked im2col patch matrices the conv and pooling
        kernels materialize (and, for conv, cache through backward).

        Folding this into :meth:`_block_rows` is what keeps the conv
        path from materializing the full ``(n·B, C·kh·kw, L)`` column
        tensor at large n: the block size shrinks until one block's
        weights *and* its im2col workspace fit the byte budget together.
        Zero for the MLP family (no window kernels), so flat workloads
        keep their historical partition.
        """
        sample_shape = self.workers[0].loader.dataset.features.shape[1:]
        if len(sample_shape) != 3:
            return 0
        itemsize = self.workers[0].loader.dataset.features.dtype.itemsize
        batch = self._batch_size
        channels, height, width = sample_shape
        total = 0
        for kernel in self.net.kernels:
            if isinstance(kernel, BatchedConv2d):
                out_h, out_w = kernel._output_hw(height, width)
                kh, kw = kernel.kernel_size
                patch = batch * out_h * out_w * channels * kh * kw * itemsize
                # The forward cols are cached for backward, which builds
                # an equally sized grad_cols matrix: both are live at
                # once during the backward pass.
                total += 2 * patch
                channels, height, width = kernel.out_channels, out_h, out_w
            elif isinstance(kernel, (BatchedMaxPool2d, BatchedAvgPool2d)):
                out_h, out_w = kernel._output_hw(height, width)
                kh, kw = kernel.kernel_size
                total += batch * channels * out_h * out_w * kh * kw * itemsize
                height, width = out_h, out_w
            elif isinstance(kernel, BatchedGlobalAvgPool2d):
                height = width = 1
            elif isinstance(kernel, BatchedFlatten):
                break
        return total

    def _block_rows(self) -> int:
        per_worker = max(
            self.arena.model_size * self.arena.dtype.itemsize
            + self._workspace_bytes,
            1,
        )
        return max(1, self.BLOCK_BYTES // per_worker)

    def _forward_backward(
        self,
        row_sel,
        rank_list: Sequence[int],
        ctx: _ExecContext,
        batch_indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sample + forward + backward for one row selection; gradients
        land in ``arena.grads`` (overwritten — no zero fill needed, each
        parameter is written exactly once per pass)."""
        features, labels = self._stacked_batch(rank_list, ctx, batch_indices)
        logits = ctx.net.forward(features, row_sel)
        losses, grad = ctx.loss_fn(logits, labels)
        ctx.net.backward(grad, row_sel)
        return losses

    def _run_pass(
        self,
        ranks,
        apply_update: bool,
        gather_indices: Optional[np.ndarray] = None,
        gather_out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One sampled forward/backward pass for all (or ``ranks``)
        workers, optionally followed by the optimizer update.

        Both paths execute in worker blocks (:attr:`BLOCK_BYTES`) for
        cache locality, and the blocks run concurrently on the
        configured thread pool (:mod:`repro.utils.parallel`) — workers
        are independent and the partition is fixed by the byte budget,
        never by the thread count, so neither blocking nor threading
        changes any value.  ``gather_indices``/``gather_out`` implement
        the fused update+gather pass (full-cluster path only): each
        block's masked columns are read right after its update, while
        the block is cache-hot, into ``gather_out`` — bit-identical to
        gathering from the full matrix afterwards.  Returns the
        per-worker losses and records each worker's ``last_loss`` (and
        ``steps_taken`` when updating), mirroring the per-worker loop.
        """
        rows = self._normalize_ranks(ranks)
        # Hoisted allocations and shared-generator draws: block threads
        # must never race the (n, N) velocity alloc or consume the
        # vectorized sampler's single stream out of block order.
        if apply_update and self.momentum and self._velocity is None:
            self._velocity = np.zeros_like(self.arena.data)
        block = self._block_rows()
        if rows is None:
            total = self.num_workers
            rank_of = None
        else:
            total = rows.size
            rank_of = rows.tolist()
        if gather_indices is not None and (rows is not None or not apply_update):
            raise ValueError(
                "fused gather requires a full-cluster update pass"
            )
        bounds = parallel.block_ranges(total, block)
        presampled = None
        if self._sampler_rng is not None:
            presampled = np.empty((total, self._batch_size), dtype=np.intp)
            for start, stop in bounds:
                block_ranks = (
                    range(start, stop) if rank_of is None
                    else rank_of[start:stop]
                )
                presampled[start:stop] = self._draw_vectorized_indices(
                    block_ranks
                )
        losses = np.empty(total, dtype=np.float64)

        def run_block(bound) -> None:
            start, stop = bound
            ctx = self._context()
            if rank_of is None:
                selection = slice(start, stop)
                block_ranks = range(start, stop)
            else:
                selection = rows[start:stop]
                block_ranks = rank_of[start:stop]
            indices = (
                presampled[start:stop] if presampled is not None else None
            )
            losses[start:stop] = self._forward_backward(
                selection, block_ranks, ctx, indices
            )
            if apply_update:
                self._apply_update(selection, ctx)
                if gather_indices is not None:
                    # Fused gather: the block's rows were just updated
                    # and are cache-hot; read their masked columns now
                    # instead of re-streaming the whole matrix later.
                    np.take(
                        self.arena.data[selection],
                        gather_indices,
                        axis=1,
                        out=gather_out[selection],
                    )

        # Phase attribution: the pass as one "compute" span on the
        # calling thread; each block additionally timed as
        # "compute.block" on whichever pool thread ran it (per-thread
        # wall-time lanes in the trace).
        with obs_phase("compute"):
            parallel.parallel_map(run_block, bounds, phase="compute.block")
        step_workers = (
            self.workers if rank_of is None
            else [self.workers[rank] for rank in rank_of]
        )
        # tolist() hands back exact python floats in one C pass (same
        # values worker.local_step would have returned).
        for worker, loss in zip(step_workers, losses.tolist()):
            if apply_update:
                worker.steps_taken += 1
            worker.last_loss = loss
        return losses

    def step(self, ranks=None) -> np.ndarray:
        """One mini-batch SGD step for all (or ``ranks``) workers at once.

        Returns the per-worker losses, in ``ranks`` order (float64, each
        entry exactly what ``worker.local_step()`` would have returned).
        """
        return self._run_pass(ranks, apply_update=True)

    def batched_steps(self, k: int, ranks=None) -> np.ndarray:
        """``k`` local steps amortized between communication rounds.

        Returns a ``(len(ranks), k)`` loss matrix whose C-order flatten
        is worker-major — the exact order the per-worker
        ``for worker: for step:`` loop emits, so round-loss averages
        match the loop bit for bit.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rows = self._normalize_ranks(ranks)
        count = self.num_workers if rows is None else rows.size
        losses = np.empty((count, k), dtype=np.float64)
        for step_index in range(k):
            losses[:, step_index] = self.step(rows)
        return losses

    def batched_steps_gather(
        self, k: int, gather_indices: np.ndarray
    ) -> tuple:
        """:meth:`batched_steps` fused with a post-update column gather.

        Runs ``k`` full-cluster local steps; on the *last* step each
        block's ``gather_indices`` columns are read immediately after
        that block's optimizer update, while the block is cache-hot —
        one pass over the arena instead of update-then-regather.  This
        is the SAPS fused round: the shared mask's surviving indices are
        known from the round seed before the local phase runs, so the
        compression gather rides the update pass.  Returns
        ``(losses, values)`` where ``losses`` matches
        :meth:`batched_steps` exactly and ``values`` is the
        ``(n, len(gather_indices))`` matrix bit-identical to
        ``arena.data[:, gather_indices]`` taken afterwards.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        gather_indices = np.asarray(gather_indices, dtype=np.intp)
        losses = np.empty((self.num_workers, k), dtype=np.float64)
        values = np.empty(
            (self.num_workers, gather_indices.size), dtype=self.arena.dtype
        )
        for step_index in range(k - 1):
            losses[:, step_index] = self.step()
        losses[:, k - 1] = self._run_pass(
            None, apply_update=True,
            gather_indices=gather_indices, gather_out=values,
        )
        return losses, values

    def compute_gradients(self, ranks=None) -> np.ndarray:
        """Batched :meth:`TrainingWorker.compute_gradient`: sample one
        mini-batch per worker and leave the gradients in ``arena.grads``
        (rows of workers outside ``ranks`` keep their previous content).
        Returns the per-worker losses without applying any update."""
        return self._run_pass(ranks, apply_update=False)

    # ------------------------------------------------------------------
    # the matrix optimizer update
    # ------------------------------------------------------------------
    def _apply_update(self, rows, ctx: _ExecContext) -> None:
        """SGD/momentum/weight-decay over whole arena rows.

        ``rows`` is ``None``, a slice (in-place on arena views) or an
        index array (gather/scatter).  Replays the per-parameter loop's
        evaluation order elementwise (decay into the gradient, velocity
        update, scaled subtraction), so the result is bit-identical to n
        independent optimizer steps.  The scratch buffer is the calling
        context's own (blocks running concurrently must not share it);
        the ``(n, N)`` velocity matrix *is* shared, but blocks touch
        disjoint rows.
        """
        arena = self.arena
        is_view = rows is None or isinstance(rows, slice)
        if rows is None:
            params = arena.data
            grads = arena.grads
            step_workers = self.workers
        elif is_view:
            params = arena.data[rows]
            grads = arena.grads[rows]
            step_workers = self.workers[rows]
        else:
            params = arena.data[rows]
            grads = arena.grads[rows]
            step_workers = [self.workers[rank] for rank in rows]
        scratch = ctx.scratch_rows(
            params.shape[0], arena.model_size, arena.dtype
        )
        rates = np.array(
            [worker.optimizer.lr for worker in step_workers], dtype=arena.dtype
        )[:, None]
        if self.weight_decay:
            # wd·X + G == G + wd·X exactly (IEEE addition commutes), so
            # the decayed gradient can build in the scratch buffer.
            np.multiply(params, self.weight_decay, out=scratch)
            scratch += grads
            grads = scratch
        if self.momentum:
            if self._velocity is None:
                self._velocity = np.zeros_like(arena.data)
            velocity = self._velocity[rows] if rows is not None else self._velocity
            velocity *= self.momentum
            velocity += grads
            if not is_view:
                self._velocity[rows] = velocity
            if self.nesterov:
                update = grads + self.momentum * velocity
            else:
                update = velocity
        else:
            update = grads
        np.multiply(update, rates, out=scratch)
        params -= scratch
        if not is_view:
            arena.data[rows] = params

    # ------------------------------------------------------------------
    # consensus evaluation
    # ------------------------------------------------------------------
    def evaluate_vector(
        self, vector: np.ndarray, dataset: Dataset, batch_size: int = 256
    ) -> tuple:
        """``(mean_loss, top1_accuracy)`` of one flat model vector.

        Forwards ``vector`` directly through the batched kernels' eval
        path — no worker replica is borrowed, mutated or restored.  Runs
        the same shared evaluation loop as
        :meth:`TrainingWorker.evaluate` (:func:`evaluate_forward`), cast
        once against the vector dtype.

        With threads configured, validation batches run concurrently:
        each pool thread forwards through its own kernel chain (the same
        per-thread contexts the block passes use), and the loss fold
        stays on the caller in batch order — bit-identical to serial.
        """
        vector = np.asarray(vector)

        def thread_forward():
            net = self._context().net
            return lambda features: net.forward_vector(vector, features)

        return evaluate_forward(
            lambda features: self.net.forward_vector(vector, features),
            dataset,
            vector.dtype,
            batch_size,
            thread_forward=thread_forward,
        )
