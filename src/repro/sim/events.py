"""Discrete-event execution engine: a simulated wall clock for training.

The synchronous engine (:mod:`repro.sim.engine`) models time as a
barrier: per round, compute time is the slowest participant and
communication time the slowest concurrent transfer.  That cannot express
the regimes the paper's Fig. 6 motivates — stragglers overlapping
compute with communication, asynchronous gossip, staleness.  This module
provides the missing execution layer:

* :class:`EventQueue` — a deterministic min-heap of timed events (ties
  pop in push order), so a run's event order — and therefore every RNG
  draw made inside handlers — is a pure function of config + seed;
* :class:`EventEngine` — per-worker clocks, per-endpoint link clocks
  (contention, on by default), and a :class:`EventTrace` of
  compute/communication intervals, unifying the
  :class:`~repro.sim.timing.ComputeModel`, the bandwidth matrix, churn
  (:mod:`repro.sim.dynamics`) and loss models
  (:mod:`repro.network.faults`) into one simulated-wall-clock timeline;
* :func:`run_event_experiment` — run an asynchronous algorithm variant
  (:mod:`repro.algorithms.asynchronous`) for a simulated time budget,
  sampling loss/accuracy/consensus distance at simulated-time
  checkpoints;
* :func:`run_sync_timeline` — replay any round-synchronous algorithm on
  the event timeline.  With constant compute, no churn and no contention
  this reproduces the synchronous ``CommunicationTimer``/``ComputeModel``
  totals to float tolerance — the event engine's correctness oracle
  (``tests/test_events.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.network.metrics import MB, CommunicationTimer, TrafficMeter
from repro.network.transport import SimulatedNetwork
from repro.sim.engine import ExperimentConfig, evaluate_consensus, make_workers
from repro.sim.timing import ComputeModel, ConstantCompute
from repro.utils.dtypes import resolve_dtype
from repro.utils.rng import as_generator


class EventQueue:
    """Deterministic priority queue of ``(time, action)`` events.

    Events at equal times pop in push order (a monotone sequence number
    breaks ties), so processing order never depends on heap internals —
    the determinism guarantee every async variant's seed-reproducibility
    rests on.
    """

    __slots__ = ("_heap", "_count")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable]] = []
        self._count = 0

    def push(self, time: float, action: Callable) -> None:
        time = float(time)
        if not np.isfinite(time) or time < 0.0:
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        heapq.heappush(self._heap, (time, self._count, action))
        self._count += 1

    def pop(self) -> Tuple[float, Callable]:
        time, _, action = heapq.heappop(self._heap)
        return time, action

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class TraceInterval:
    """One busy interval of one worker on the simulated clock."""

    worker: int
    kind: str  # "compute" | "comm"
    start: float
    end: float


class EventTrace:
    """Per-worker compute/communication intervals of one run.

    Feeds the timeline reports in :mod:`repro.analysis.timeline`
    (compute / communication / idle breakdown per worker).  Communication
    may overlap computation (AD-PSGD's point), so idle time is derived as
    ``max(horizon - compute - comm, 0)`` rather than interval arithmetic.
    """

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self.intervals: List[TraceInterval] = []

    def add(self, worker: int, kind: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start} > {end}")
        if end > start:  # zero-length intervals carry no information
            self.intervals.append(TraceInterval(worker, kind, start, end))

    def busy_seconds(
        self, kind: str, horizon: Optional[float] = None
    ) -> np.ndarray:
        """Total seconds per worker spent in intervals of ``kind``.

        ``horizon`` clips intervals that were scheduled past the end of
        the run (a worker mid-compute when the clock ran out)."""
        totals = np.zeros(self.num_workers, dtype=np.float64)
        for interval in self.intervals:
            if interval.kind == kind and 0 <= interval.worker < self.num_workers:
                end = interval.end if horizon is None else min(interval.end, horizon)
                if end > interval.start:
                    totals[interval.worker] += end - interval.start
        return totals


@dataclass
class TimedRecord:
    """One simulated-time checkpoint along an event-engine run.

    ``comm_time_s`` / ``compute_time_s`` are cumulative barrier times and
    only populated by the synchronous replay (:func:`run_sync_timeline`);
    asynchronous runs have no barrier, so their time axis is ``time_s``
    itself and those fields stay zero.
    """

    time_s: float
    train_loss: float
    val_loss: float
    val_accuracy: float
    consensus_distance: float
    worker_traffic_mb: float
    server_traffic_mb: float
    events_processed: int
    local_steps: int
    mean_staleness: float = 0.0
    comm_time_s: float = 0.0
    compute_time_s: float = 0.0


@dataclass
class EventResult:
    """Full simulated-time trajectory of one event-engine run."""

    algorithm: str
    history: List[TimedRecord] = field(default_factory=list)
    trace: Optional[EventTrace] = None
    horizon: float = 0.0
    total_local_steps: int = 0
    events_processed: int = 0
    staleness: List[int] = field(default_factory=list)
    #: Per-round (compute, comm) barrier times — populated by the
    #: synchronous replay only; the oracle tests compare these against
    #: the synchronous engine's per-round numbers.
    round_compute_seconds: List[float] = field(default_factory=list)
    round_comm_seconds: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.history[-1].val_accuracy if self.history else float("nan")

    @property
    def best_accuracy(self) -> float:
        if not self.history:
            return float("nan")
        return max(record.val_accuracy for record in self.history)

    def time_to_accuracy(self, target_accuracy: float) -> Optional[float]:
        """First checkpoint time at which validation accuracy reached
        ``target_accuracy`` (None if never) — the Fig. 6 / Table IV query
        on the simulated-time axis."""
        for record in self.history:
            if record.val_accuracy >= target_accuracy:
                return record.time_s
        return None


class EventEngine:
    """Deterministic discrete-event executor over one simulated network.

    Holds the queue, the wall clock, per-worker clocks, per-endpoint link
    clocks (for contention, on by default here — the synchronous timer
    keeps it off by default) and the shared scenario models: compute
    times, churn and exchange loss.  Asynchronous algorithms
    (:mod:`repro.algorithms.asynchronous`) bind to the engine and drive
    it through :meth:`schedule` / :meth:`start_transfer`.
    """

    #: Safety valve: an algorithm whose events never advance time (no
    #: compute model and no bandwidth) would otherwise spin forever
    #: inside one simulated instant.
    MAX_EVENTS = 2_000_000

    def __init__(
        self,
        network: SimulatedNetwork,
        compute_model: Optional[ComputeModel] = None,
        churn=None,
        loss_model=None,
        contention: bool = True,
    ) -> None:
        self.network = network
        self.num_workers = network.num_workers
        self.compute_model = compute_model
        self.churn = churn
        self.loss_model = loss_model
        self.contention = bool(contention)
        self.queue = EventQueue()
        self.now = 0.0
        #: Time each worker becomes free (informational; the handlers
        #: keep the authoritative per-worker state machines).
        self.worker_free = np.zeros(self.num_workers, dtype=np.float64)
        self._link_free: Dict[Tuple, float] = {}
        self.trace = EventTrace(self.num_workers)
        self.events_processed = 0

    # ------------------------------------------------------------------
    # time helpers
    # ------------------------------------------------------------------
    def compute_seconds(self, cycle_index: int, rank: int, steps: int = 1) -> float:
        """Seconds worker ``rank`` needs for ``steps`` local steps of its
        ``cycle_index``-th cycle (0 without a compute model)."""
        if self.compute_model is None:
            return 0.0
        return float(self.compute_model.step_time(cycle_index, rank, steps))

    def transfer_seconds(self, sender: int, receiver: int, num_bytes: int) -> float:
        """Unloaded duration of one directed transfer (0 when the link is
        not time-modelled)."""
        if num_bytes == 0:
            return 0.0
        link = self.network.link_bandwidth(sender, receiver)
        if link is None:
            return 0.0
        if link <= 0:
            raise ValueError(f"bandwidth must be positive, got {link}")
        return (num_bytes / MB) / link

    def schedule(self, time: float, action: Callable) -> None:
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past ({time} < now={self.now})"
            )
        self.queue.push(time, action)

    def start_transfer(
        self,
        start: float,
        sender: int,
        receiver: int,
        num_bytes: int,
        index: int = 0,
    ) -> Tuple[float, float]:
        """Account one directed transfer; returns its ``(begin, end)``.

        Under contention the transfer waits for the sender's transmit end
        and the receiver's receive end to free up (links are full
        duplex), then occupies both for its duration.  Bytes are metered
        either way (``index`` is the meter's round slot — async callers
        pass their exchange counter).
        """
        duration = self.transfer_seconds(sender, receiver, num_bytes)
        endpoints = SimulatedNetwork.link_endpoints(sender, receiver)
        if self.contention:
            begin, end = CommunicationTimer.reserve_endpoints(
                start, duration, endpoints, self._link_free
            )
        else:
            begin, end = start, start + duration
        self.network.meter.record(index, sender, receiver, num_bytes)
        for node in (sender, receiver):
            if node != TrafficMeter.SERVER:
                self.trace.add(node, "comm", begin, end)
        return begin, end

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(
        self,
        algorithm,
        validation: Dataset,
        duration: float,
        checkpoint_every: float,
        record_initial: bool = True,
    ) -> EventResult:
        """Drive ``algorithm`` (an async variant already ``setup()``)
        until the simulated clock reaches ``duration``, snapshotting
        metrics every ``checkpoint_every`` simulated seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        algorithm.bind(self)
        result = EventResult(
            algorithm=algorithm.name, trace=self.trace, horizon=float(duration)
        )

        def snapshot(at: float) -> None:
            val_loss, val_accuracy = evaluate_consensus(algorithm, validation)
            staleness = getattr(algorithm, "staleness_log", [])
            result.history.append(
                TimedRecord(
                    time_s=at,
                    train_loss=algorithm.mean_train_loss,
                    val_loss=val_loss,
                    val_accuracy=val_accuracy,
                    consensus_distance=algorithm.consensus_distance(),
                    worker_traffic_mb=self.network.meter.mean_worker_traffic_mb(),
                    server_traffic_mb=self.network.server_traffic_mb(),
                    events_processed=self.events_processed,
                    local_steps=algorithm.total_local_steps,
                    mean_staleness=(
                        float(np.mean(staleness)) if staleness else 0.0
                    ),
                )
            )

        algorithm.start()
        if record_initial:
            snapshot(0.0)
        # Checkpoint times are k * checkpoint_every (multiplication, not
        # accumulation) so the final checkpoint lands exactly on a round
        # multiple of the interval instead of drifting past it.
        checkpoint_index = 1
        next_checkpoint = checkpoint_every
        while self.queue:
            time = self.queue.peek_time()
            if time > duration:
                break
            # Snapshots happen between events: state at a checkpoint is
            # the state after every event strictly before it.
            while next_checkpoint <= time:
                snapshot(next_checkpoint)
                checkpoint_index += 1
                next_checkpoint = checkpoint_index * checkpoint_every
            time, action = self.queue.pop()
            self.now = time
            self.events_processed += 1
            if self.events_processed > self.MAX_EVENTS:
                raise RuntimeError(
                    "event budget exhausted — the schedule is not advancing "
                    "simulated time (no compute model and no bandwidth?)"
                )
            action(time)
        self.now = float(duration)
        while next_checkpoint <= duration:
            snapshot(next_checkpoint)
            checkpoint_index += 1
            next_checkpoint = checkpoint_index * checkpoint_every
        if not result.history or result.history[-1].time_s < duration:
            snapshot(float(duration))
        result.staleness = list(getattr(algorithm, "staleness_log", []))
        result.total_local_steps = algorithm.total_local_steps
        result.events_processed = self.events_processed
        return result


# ----------------------------------------------------------------------
# harness entry points
# ----------------------------------------------------------------------
def run_event_experiment(
    algorithm,
    partitions: Sequence[Dataset],
    validation: Dataset,
    model_factory: Callable,
    config: ExperimentConfig,
    network: Optional[SimulatedNetwork] = None,
    compute_model: Optional[ComputeModel] = None,
    churn=None,
    loss_model=None,
    duration: float = 30.0,
    checkpoint_every: Optional[float] = None,
    contention: bool = True,
) -> EventResult:
    """Run an asynchronous algorithm variant on the event engine.

    The mirror of :func:`repro.sim.run_experiment` for the event-driven
    engine: builds workers (arena-backed, batched kernels and all), binds
    the algorithm, and runs for ``duration`` simulated seconds with
    checkpoints every ``checkpoint_every`` (default: 10 per run).
    Without a ``compute_model`` a :class:`ConstantCompute` of 0.1 s/step
    is assumed — an event simulation needs *some* notion of compute time
    for its clock to advance.
    """
    if network is None:
        network = SimulatedNetwork(num_workers=len(partitions))
    validation = validation.astype(resolve_dtype(config.dtype))
    if config.local_steps > 1 and hasattr(algorithm, "local_steps"):
        algorithm.local_steps = config.local_steps
    if compute_model is None:
        compute_model = ConstantCompute(0.1)
    workers = make_workers(model_factory, partitions, config)
    algorithm.setup(workers, network, rng=as_generator(config.seed))
    engine = EventEngine(
        network,
        compute_model=compute_model,
        churn=churn,
        loss_model=loss_model,
        contention=contention,
    )
    if checkpoint_every is None:
        checkpoint_every = duration / 10.0
    return engine.run(algorithm, validation, duration, checkpoint_every)


def run_sync_timeline(
    algorithm,
    partitions: Sequence[Dataset],
    validation: Dataset,
    model_factory: Callable,
    config: ExperimentConfig,
    network: Optional[SimulatedNetwork] = None,
    compute_model: Optional[ComputeModel] = None,
    contention: bool = False,
) -> EventResult:
    """Replay a round-synchronous algorithm on the event timeline.

    The algorithm's numerics are untouched (``run_round`` executes
    exactly as under :func:`repro.sim.run_experiment`); the engine then
    lays the round out on the simulated clock: one compute interval per
    participant, then the round's recorded transfers, then the barrier.
    With no contention the barrier reproduces the synchronous
    ``CommunicationTimer``/``ComputeModel`` totals to float tolerance —
    the degenerate-case oracle.  With ``contention=True`` transfers that
    share link ends serialize, which is the event engine's default
    behaviour and *not* expressible by the synchronous timer's
    max-of-transfers.

    Only single-phase rounds are replayed (all seven paper algorithms);
    an algorithm closing multiple timer phases per round would replay
    its last phase only.
    """
    if network is None:
        network = SimulatedNetwork(num_workers=len(partitions))
    validation = validation.astype(resolve_dtype(config.dtype))
    if config.local_steps > 1 and hasattr(algorithm, "local_steps"):
        algorithm.local_steps = config.local_steps
    workers = make_workers(model_factory, partitions, config)
    algorithm.setup(workers, network, rng=as_generator(config.seed))
    engine = EventEngine(
        network, compute_model=compute_model, contention=contention
    )
    trace = engine.trace
    result = EventResult(algorithm=algorithm.name, trace=trace)

    comm_total = 0.0
    compute_total = 0.0
    steps_total = 0
    running_loss = float("nan")

    def snapshot(round_index: int) -> None:
        val_loss, val_accuracy = evaluate_consensus(algorithm, validation)
        result.history.append(
            TimedRecord(
                time_s=engine.now,
                train_loss=running_loss,
                val_loss=val_loss,
                val_accuracy=val_accuracy,
                consensus_distance=algorithm.consensus_distance(),
                worker_traffic_mb=network.meter.mean_worker_traffic_mb(),
                server_traffic_mb=network.server_traffic_mb(),
                events_processed=round_index + 1,
                local_steps=steps_total,
                comm_time_s=comm_total,
                compute_time_s=compute_total,
            )
        )

    milestones = set(config.lr_milestones or [])
    for round_index in range(config.rounds):
        if round_index in milestones:
            for worker in workers:
                worker.optimizer.lr *= config.lr_gamma
        running_loss = algorithm.run_round(round_index)

        # Compute phase: every participant runs its local steps starting
        # at the last barrier; the phase ends when the straggler does.
        participants = getattr(algorithm, "last_participants", None)
        if participants is None:
            participants = range(engine.num_workers)
        participants = list(participants)
        steps = getattr(algorithm, "local_steps", 1)
        start = engine.now
        compute_end = start
        for rank in participants:
            dt = engine.compute_seconds(round_index, rank, steps)
            trace.add(rank, "compute", start, start + dt)
            compute_end = max(compute_end, start + dt)
        steps_total += steps * len(participants)

        # Communication phase: replay the round's recorded transfers.
        # All start at the compute barrier; under contention, shared
        # link ends serialize through the engine's link clocks (same
        # greedy reservation the timer and start_transfer use).
        barrier = compute_end
        for duration, endpoints in network.timer.last_round_transfers:
            if contention:
                begin, end = CommunicationTimer.reserve_endpoints(
                    compute_end, duration, endpoints, engine._link_free
                )
            else:
                begin, end = compute_end, compute_end + duration
            if endpoints:
                for kind, node in endpoints:
                    if node != TrafficMeter.SERVER:
                        trace.add(node, "comm", begin, end)
            else:
                # Aggregate/collective transfers (PSGD's ring all-reduce,
                # the sparse allgather, the non-contended server batch)
                # declare no link ends but involve every participant —
                # attribute the interval to all of them so the timeline
                # breakdown does not book collective time as idle.
                for node in participants:
                    trace.add(node, "comm", begin, end)
            barrier = max(barrier, end)

        result.round_compute_seconds.append(compute_end - start)
        result.round_comm_seconds.append(barrier - compute_end)
        compute_total += compute_end - start
        comm_total += barrier - compute_end
        engine.now = barrier

        is_last = round_index == config.rounds - 1
        if (round_index + 1) % config.eval_every == 0 or is_last:
            snapshot(round_index)
    result.horizon = engine.now
    return result
