"""Discrete-event execution engine: a simulated wall clock for training.

The synchronous engine (:mod:`repro.sim.engine`) models time as a
barrier: per round, compute time is the slowest participant and
communication time the slowest concurrent transfer.  That cannot express
the regimes the paper's Fig. 6 motivates — stragglers overlapping
compute with communication, asynchronous gossip, staleness.  This module
provides the missing execution layer:

* :class:`EventQueue` — a deterministic min-heap of timed events (ties
  pop in push order), so a run's event order — and therefore every RNG
  draw made inside handlers — is a pure function of config + seed;
* :class:`EventEngine` — per-worker clocks, per-endpoint link clocks
  (contention, on by default), and a :class:`EventTrace` of
  compute/communication intervals, unifying the
  :class:`~repro.sim.timing.ComputeModel`, the bandwidth matrix, churn
  (:mod:`repro.sim.dynamics`) and loss models
  (:mod:`repro.network.faults`) into one simulated-wall-clock timeline;
* :func:`run_event_experiment` — run an asynchronous algorithm variant
  (:mod:`repro.algorithms.asynchronous`) for a simulated time budget,
  sampling loss/accuracy/consensus distance at simulated-time
  checkpoints;
* :func:`run_sync_timeline` — replay any round-synchronous algorithm on
  the event timeline.  With constant compute, no churn and no contention
  this reproduces the synchronous ``CommunicationTimer``/``ComputeModel``
  totals to float tolerance — the event engine's correctness oracle
  (``tests/test_events.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.data.datasets import Dataset
from repro.network.metrics import MB, CommunicationTimer, TrafficMeter
from repro.network.transport import SimulatedNetwork
from repro.resilience import (
    CheckpointRecovery,
    ExchangePolicy,
    RecoveryPolicy,
    ResilienceStats,
    make_recovery_policy,
)
from repro.sim.calendar import CalendarQueue
from repro.sim.engine import ExperimentConfig, evaluate_consensus, make_workers
from repro.sim.faults import FaultPlan
from repro.sim.timing import ComputeModel, ConstantCompute
from repro.utils.dtypes import resolve_dtype
from repro.utils.rng import as_generator


#: Tombstone marking a cancelled queue entry (``None`` stays a valid
#: action payload).
_CANCELLED = object()


class EventQueue:
    """Deterministic priority queue of ``(time, action)`` events.

    Events at equal times pop in push order (a monotone sequence number
    breaks ties), so processing order never depends on heap internals —
    the determinism guarantee every async variant's seed-reproducibility
    rests on.

    :meth:`push` returns a handle that :meth:`cancel` turns into a
    no-op in place (the crash machinery aborts scheduled transfer
    completions this way).  Cancellation never touches the heap
    structure, so the pop order of surviving events is exactly what it
    would have been — determinism survives aborts.
    """

    __slots__ = ("_heap", "_count", "_live")

    def __init__(self) -> None:
        # Entries are mutable [time, seq, action] lists; a cancelled
        # entry keeps its heap position with action = _CANCELLED.
        self._heap: List[List] = []
        self._count = 0
        self._live = 0

    def push(self, time: float, action: Callable) -> List:
        time = float(time)
        if not np.isfinite(time) or time < 0.0:
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        entry = [time, self._count, action]
        heapq.heappush(self._heap, entry)
        self._count += 1
        self._live += 1
        return entry

    def push_many(self, events) -> List[List]:
        """Batched :meth:`push`; returns the handles in input order.

        Same (time, push-order) semantics as a push loop — the batched
        form exists so callers can hit either scheduler through one API
        (:class:`~repro.sim.calendar.CalendarQueue` amortizes real work
        here; for the heap it is just the loop)."""
        return [self.push(time, action) for time, action in events]

    #: Compaction floor: below this heap size the tombstone overhead is
    #: noise and rebuilding would only churn allocations.
    _COMPACT_MIN = 64

    def cancel(self, entry: List) -> None:
        """Void a pushed event (idempotent); survivors keep their order.

        When tombstones outnumber live entries (long fault-heavy runs
        cancel in bulk — aborted exchanges, dead incarnations) the heap
        is rebuilt from the survivors in place, so its size tracks the
        live population instead of growing unboundedly.  Pop order is
        untouched: it is the total order by ``(time, seq)``, which does
        not depend on the heap's internal layout.
        """
        if entry[2] is not _CANCELLED:
            entry[2] = _CANCELLED
            self._live -= 1
            heap = self._heap
            if len(heap) > self._COMPACT_MIN and self._live < len(heap) // 2:
                self._heap = [e for e in heap if e[2] is not _CANCELLED]
                heapq.heapify(self._heap)

    def pop(self) -> Tuple[float, Callable]:
        while True:
            entry = heapq.heappop(self._heap)
            time, _, action = entry
            if action is not _CANCELLED:
                # Tombstone the popped entry so a late cancel() against
                # its handle is a harmless no-op.
                entry[2] = _CANCELLED
                self._live -= 1
                return time, action

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0][2] is _CANCELLED:
            heapq.heappop(heap)  # drop cancelled entries lazily
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


@dataclass
class TraceInterval:
    """One busy interval of one worker on the simulated clock."""

    worker: int
    kind: str  # "compute" | "comm"
    start: float
    end: float


class EventTrace:
    """Per-worker compute/communication intervals of one run.

    Feeds the timeline reports in :mod:`repro.analysis.timeline`
    (compute / communication / idle breakdown per worker).  Communication
    may overlap computation (AD-PSGD's point), so idle time is derived as
    ``max(horizon - compute - comm, 0)`` rather than interval arithmetic.
    """

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self.intervals: List[TraceInterval] = []
        #: Optional :class:`repro.obs.TraceRecorder` that every interval
        #: is forwarded to as a simulated-time lane (set by the engine
        #: when a trace-mode recorder is installed).  This makes the
        #: event trace the simulated-time backend of the telemetry
        #: layer: one Chrome trace carries wall-time thread lanes and
        #: simulated-time worker lanes side by side.
        self.sink = None

    def add(self, worker: int, kind: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start} > {end}")
        if end > start:  # zero-length intervals carry no information
            self.intervals.append(TraceInterval(worker, kind, start, end))
            if self.sink is not None:
                self.sink.add_sim_span(worker, kind, start, end)

    def busy_seconds(
        self, kind: str, horizon: Optional[float] = None
    ) -> np.ndarray:
        """Total seconds per worker spent in intervals of ``kind``.

        ``horizon`` clips intervals that were scheduled past the end of
        the run (a worker mid-compute when the clock ran out)."""
        totals = np.zeros(self.num_workers, dtype=np.float64)
        for interval in self.intervals:
            if interval.kind == kind and 0 <= interval.worker < self.num_workers:
                end = interval.end if horizon is None else min(interval.end, horizon)
                if end > interval.start:
                    totals[interval.worker] += end - interval.start
        return totals


class NullTrace(EventTrace):
    """Trace sink that records nothing.

    Million-client runs generate interval objects faster than anything
    will ever read them; ``EventEngine(record_trace=False)`` swaps this
    in so tracing cost scales with *analysed* runs, not all runs."""

    def add(self, worker: int, kind: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start} > {end}")


@dataclass
class TimedRecord:
    """One simulated-time checkpoint along an event-engine run.

    ``comm_time_s`` / ``compute_time_s`` are cumulative barrier times and
    only populated by the synchronous replay (:func:`run_sync_timeline`);
    asynchronous runs have no barrier, so their time axis is ``time_s``
    itself and those fields stay zero.
    """

    time_s: float
    train_loss: float
    val_loss: float
    val_accuracy: float
    consensus_distance: float
    worker_traffic_mb: float
    server_traffic_mb: float
    events_processed: int
    local_steps: int
    mean_staleness: float = 0.0
    comm_time_s: float = 0.0
    compute_time_s: float = 0.0


@dataclass
class EventResult:
    """Full simulated-time trajectory of one event-engine run."""

    algorithm: str
    history: List[TimedRecord] = field(default_factory=list)
    trace: Optional[EventTrace] = None
    horizon: float = 0.0
    total_local_steps: int = 0
    events_processed: int = 0
    staleness: List[int] = field(default_factory=list)
    #: Per-round (compute, comm) barrier times — populated by the
    #: synchronous replay only; the oracle tests compare these against
    #: the synchronous engine's per-round numbers.
    round_compute_seconds: List[float] = field(default_factory=list)
    round_comm_seconds: List[float] = field(default_factory=list)
    #: Fault accounting (goodput, retries, downtime, restores) — None
    #: unless the run had an active fault plan.
    resilience: Optional[ResilienceStats] = None

    @property
    def final_accuracy(self) -> float:
        return self.history[-1].val_accuracy if self.history else float("nan")

    @property
    def best_accuracy(self) -> float:
        if not self.history:
            return float("nan")
        return max(record.val_accuracy for record in self.history)

    def time_to_accuracy(self, target_accuracy: float) -> Optional[float]:
        """First checkpoint time at which validation accuracy reached
        ``target_accuracy`` (None if never) — the Fig. 6 / Table IV query
        on the simulated-time axis."""
        for record in self.history:
            if record.val_accuracy >= target_accuracy:
                return record.time_s
        return None


class EventEngine:
    """Deterministic discrete-event executor over one simulated network.

    Holds the queue, the wall clock, per-worker clocks, per-endpoint link
    clocks (for contention, on by default here — the synchronous timer
    keeps it off by default) and the shared scenario models: compute
    times, churn and exchange loss.  Asynchronous algorithms
    (:mod:`repro.algorithms.asynchronous`) bind to the engine and drive
    it through :meth:`schedule` / :meth:`start_transfer`.
    """

    #: Safety valve: an algorithm whose events never advance time (no
    #: compute model and no bandwidth) would otherwise spin forever
    #: inside one simulated instant.
    MAX_EVENTS = 2_000_000

    def __init__(
        self,
        network: SimulatedNetwork,
        compute_model: Optional[ComputeModel] = None,
        churn=None,
        loss_model=None,
        contention: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        exchange_policy: Optional[ExchangePolicy] = None,
        recovery: Optional[RecoveryPolicy] = None,
        scheduler: str = "calendar",
        population=None,
        record_trace: bool = True,
    ) -> None:
        self.network = network
        self.num_workers = network.num_workers
        self.compute_model = compute_model
        self.churn = churn
        self.loss_model = loss_model
        self.contention = bool(contention)
        if scheduler not in ("calendar", "heap"):
            raise ValueError(
                f"scheduler must be 'calendar' or 'heap', got {scheduler!r}"
            )
        self.scheduler = scheduler
        # Both schedulers pop in exactly (time, push-order) — the
        # calendar queue is property-tested bit-for-bit against the heap
        # (tests/test_calendar_queue.py), so the default is the fast one
        # and "heap" stays available as the oracle.
        self.queue = CalendarQueue() if scheduler == "calendar" else EventQueue()
        #: Client up/down arrival process (repro.sim.population) — the
        #: algorithms gate cycle starts on it; None means always-on.
        self.population = population
        if population is not None and population.num_clients != self.num_workers:
            raise ValueError(
                f"population models {population.num_clients} clients but the "
                f"network has {self.num_workers} workers"
            )
        self.now = 0.0
        #: Time each worker becomes free (informational; the handlers
        #: keep the authoritative per-worker state machines).
        self.worker_free = np.zeros(self.num_workers, dtype=np.float64)
        self._link_free: Dict[Tuple, float] = {}
        self.trace = (
            EventTrace(self.num_workers)
            if record_trace
            else NullTrace(self.num_workers)
        )
        if record_trace and obs.recorder().trace is not None:
            self.trace.sink = obs.recorder().trace
        self.events_processed = 0
        # --- fault state -------------------------------------------------
        # The contract: with no plan (or an empty one) the engine performs
        # *exactly* the operations of the fault-free engine — same events,
        # same RNG draws, same metering — so no-fault runs stay
        # bit-identical to pre-fault-subsystem outputs.
        self.fault_plan = fault_plan
        self.faults_active = fault_plan is not None and not fault_plan.is_empty
        if fault_plan is not None and fault_plan.num_workers != self.num_workers:
            raise ValueError(
                f"fault plan is for {fault_plan.num_workers} workers but the "
                f"network has {self.num_workers}"
            )
        self.worker_up = np.ones(self.num_workers, dtype=bool)
        #: Bumped at each crash; events scheduled on behalf of a worker
        #: capture its incarnation and drop themselves when it changed —
        #: stale callbacks of a dead incarnation never fire.
        self.incarnation = np.zeros(self.num_workers, dtype=np.int64)
        self._down_links: set = set()
        if self.faults_active:
            self.exchange_policy = exchange_policy or ExchangePolicy()
            self.recovery = recovery or make_recovery_policy("checkpoint")
            self.resilience: Optional[ResilienceStats] = ResilienceStats(
                self.num_workers
            )
        else:
            self.exchange_policy = exchange_policy
            self.recovery = recovery
            self.resilience = None
        #: In-flight tracked transfers by id: (node_a, node_b, completion
        #: queue entry, link-reservation rollback info, abort callback).
        self._inflight: Dict[int, Tuple] = {}
        self._next_transfer_id = 0
        self._algorithm = None

    # ------------------------------------------------------------------
    # time helpers
    # ------------------------------------------------------------------
    def compute_seconds(self, cycle_index: int, rank: int, steps: int = 1) -> float:
        """Seconds worker ``rank`` needs for ``steps`` local steps of its
        ``cycle_index``-th cycle (0 without a compute model)."""
        if self.compute_model is None:
            return 0.0
        return float(self.compute_model.step_time(cycle_index, rank, steps))

    def transfer_seconds(self, sender: int, receiver: int, num_bytes: int) -> float:
        """Unloaded duration of one directed transfer (0 when the link is
        not time-modelled)."""
        if num_bytes == 0:
            return 0.0
        link = self.network.link_bandwidth(sender, receiver)
        if link is None:
            return 0.0
        if link <= 0:
            raise ValueError(f"bandwidth must be positive, got {link}")
        return (num_bytes / MB) / link

    def schedule(self, time: float, action: Callable) -> None:
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past ({time} < now={self.now})"
            )
        self.queue.push(time, action)

    def schedule_many(self, events: Sequence[Tuple[float, Callable]]) -> None:
        """Batched :meth:`schedule` — the per-round sampling storm of a
        sampled-participation run inserts hundreds of events at once."""
        now = self.now
        for time, _ in events:
            if time < now:
                raise ValueError(
                    f"cannot schedule into the past ({time} < now={now})"
                )
        self.queue.push_many(events)

    def start_transfer(
        self,
        start: float,
        sender: int,
        receiver: int,
        num_bytes: int,
        index: int = 0,
    ) -> Tuple[float, float]:
        """Account one directed transfer; returns its ``(begin, end)``.

        Under contention the transfer waits for the sender's transmit end
        and the receiver's receive end to free up (links are full
        duplex), then occupies both for its duration.  Bytes are metered
        either way (``index`` is the meter's round slot — async callers
        pass their exchange counter).
        """
        duration = self.transfer_seconds(sender, receiver, num_bytes)
        endpoints = SimulatedNetwork.link_endpoints(sender, receiver)
        if self.contention:
            begin, end = CommunicationTimer.reserve_endpoints(
                start, duration, endpoints, self._link_free
            )
        else:
            begin, end = start, start + duration
        self.network.meter.record(index, sender, receiver, num_bytes)
        for node in (sender, receiver):
            if node != TrafficMeter.SERVER:
                self.trace.add(node, "comm", begin, end)
        return begin, end

    # ------------------------------------------------------------------
    # fault queries
    # ------------------------------------------------------------------
    def node_up(self, node: int) -> bool:
        """Liveness of a node (the parameter server never crashes)."""
        if node == TrafficMeter.SERVER:
            return True
        return bool(self.worker_up[node])

    def node_incarnation(self, node: int) -> int:
        return 0 if node == TrafficMeter.SERVER else int(self.incarnation[node])

    def exchange_viable(self, a: int, b: int) -> bool:
        """Both ends live and the link between them not down."""
        if not (self.node_up(a) and self.node_up(b)):
            return False
        if TrafficMeter.SERVER in (a, b):
            return True
        return (min(a, b), max(a, b)) not in self._down_links

    # ------------------------------------------------------------------
    # tracked transfers (crash-abortable)
    # ------------------------------------------------------------------
    def _track(
        self,
        a: int,
        b: int,
        done: float,
        reservations: Dict[Tuple, Optional[float]],
        on_success: Callable,
        on_abort: Optional[Callable],
        counted: bool,
    ) -> None:
        tid = self._next_transfer_id
        self._next_transfer_id += 1

        def complete(t: float) -> None:
            self._inflight.pop(tid, None)
            if counted and self.resilience is not None:
                self.resilience.completed_exchanges += 1
            on_success(t)

        handle = self.queue.push(done, complete)
        after = {key: self._link_free.get(key) for key in reservations}
        self._inflight[tid] = (a, b, handle, reservations, after, on_abort, counted)

    def _snapshot_reservations(self, pairs) -> Dict[Tuple, Optional[float]]:
        keys = set()
        for sender, receiver in pairs:
            keys.update(SimulatedNetwork.link_endpoints(sender, receiver))
        return {key: self._link_free.get(key) for key in keys}

    def start_tracked_exchange(
        self,
        now: float,
        a: int,
        b: int,
        num_bytes: int,
        index: int,
        on_success: Callable,
        on_abort: Optional[Callable] = None,
        counted: bool = True,
    ) -> None:
        """Bidirectional exchange whose completion a crash can abort.

        Without an active fault plan this degenerates to exactly the
        classic pattern — two :meth:`start_transfer` calls plus one
        scheduled completion event — so fault-free runs are untouched.
        With faults active the completion event is registered in the
        in-flight table: a crash of either end cancels it, rolls the
        link reservations back and fires ``on_abort`` at crash time.
        If the exchange would outlive the policy deadline it is not
        started at all; ``on_abort`` fires at the deadline instead.
        """
        if not self.faults_active:
            _, end_a = self.start_transfer(now, a, b, num_bytes, index)
            _, end_b = self.start_transfer(now, b, a, num_bytes, index)
            self.schedule(max(end_a, end_b, now), on_success)
            return
        reservations = self._snapshot_reservations(((a, b), (b, a)))
        _, end_a = self.start_transfer(now, a, b, num_bytes, index)
        _, end_b = self.start_transfer(now, b, a, num_bytes, index)
        done = max(end_a, end_b, now)
        policy = self.exchange_policy
        if policy is not None and done - now > policy.timeout:
            # Contention pushed the exchange past its deadline: both
            # sides give up when the deadline expires.
            if counted:
                self.resilience.timeout_exchanges += 1
            if on_abort is not None:
                self.schedule(now + policy.timeout, on_abort)
            return
        self._track(a, b, done, reservations, on_success, on_abort, counted)

    def start_tracked_transfer(
        self,
        now: float,
        sender: int,
        receiver: int,
        num_bytes: int,
        index: int,
        on_success: Callable,
        on_abort: Optional[Callable] = None,
        counted: bool = True,
    ) -> None:
        """One directed crash-abortable transfer (the server-path leg).

        ``counted=False`` keeps the transfer out of the goodput
        accounting (download legs and recovery fetches are plumbing, not
        exchange attempts)."""
        if not self.faults_active:
            _, end = self.start_transfer(now, sender, receiver, num_bytes, index)
            self.schedule(max(end, now), on_success)
            return
        reservations = self._snapshot_reservations(((sender, receiver),))
        _, end = self.start_transfer(now, sender, receiver, num_bytes, index)
        done = max(end, now)
        policy = self.exchange_policy
        if policy is not None and counted and done - now > policy.timeout:
            self.resilience.timeout_exchanges += 1
            if on_abort is not None:
                self.schedule(now + policy.timeout, on_abort)
            return
        self._track(sender, receiver, done, reservations, on_success, on_abort, counted)

    def _abort_inflight(self, tid: int, now: float) -> None:
        a, b, handle, before, after, on_abort, counted = self._inflight.pop(tid)
        self.queue.cancel(handle)
        # Free the link ends this transfer reserved — but only where the
        # link clock still reads this transfer's reservation; a later
        # reservation stacked on top cannot be unwound.
        for key, original in before.items():
            if self._link_free.get(key) == after.get(key):
                if original is None:
                    self._link_free.pop(key, None)
                else:
                    self._link_free[key] = original
        if counted and self.resilience is not None:
            self.resilience.aborted_exchanges += 1
        if on_abort is not None:
            on_abort(now)

    def _abort_matching(self, now: float, involves: Callable[[int, int], bool]) -> None:
        for tid in [
            tid
            for tid, (a, b, *_rest) in self._inflight.items()
            if involves(a, b)
        ]:
            self._abort_inflight(tid, now)

    # ------------------------------------------------------------------
    # fault handlers
    # ------------------------------------------------------------------
    def _on_crash(self, worker: int, now: float) -> None:
        if not self.worker_up[worker]:
            return
        self.worker_up[worker] = False
        self.incarnation[worker] += 1
        self.resilience.record_crash(worker, now)
        self._abort_matching(now, lambda a, b: worker in (a, b))
        if self._algorithm is not None:
            on_crashed = getattr(self._algorithm, "on_worker_crashed", None)
            if on_crashed is not None:
                on_crashed(worker, now)

    def _on_recover(self, worker: int, now: float) -> None:
        if self.worker_up[worker]:
            return
        self.worker_up[worker] = True
        self.resilience.record_recovery(worker, now)
        self.recovery.recover(self, self._algorithm, worker, now)

    def _on_link_down(self, a: int, b: int, now: float) -> None:
        self._down_links.add((min(a, b), max(a, b)))
        self._abort_matching(now, lambda x, y: {x, y} == {a, b})

    def _on_link_up(self, a: int, b: int, now: float) -> None:
        self._down_links.discard((min(a, b), max(a, b)))

    def _schedule_faults(self, duration: float) -> None:
        """Queue the plan's fault events plus, under checkpoint recovery,
        the periodic snapshot captures.  Only called with faults active,
        so fault-free runs process exactly the same event sequence as
        before the fault subsystem existed."""
        for event in self.fault_plan.events:
            if event.kind == "crash":
                action = (
                    lambda t, w=event.worker: self._on_crash(w, t)
                )
            elif event.kind == "recover":
                action = (
                    lambda t, w=event.worker: self._on_recover(w, t)
                )
            elif event.kind == "link_down":
                action = (
                    lambda t, link=event.link: self._on_link_down(*link, t)
                )
            else:  # link_up
                action = (
                    lambda t, link=event.link: self._on_link_up(*link, t)
                )
            # Events past the horizon stay queued but never pop — the run
            # loop stops at the first event beyond ``duration``.
            self.queue.push(event.time, action)
        store = getattr(self.recovery, "store", None)
        if store is not None:
            interval = store.interval
            tick = 1
            while tick * interval <= duration:
                self.queue.push(
                    tick * interval,
                    lambda t: store.capture(self._algorithm, self.worker_up, t),
                )
                tick += 1

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(
        self,
        algorithm,
        validation: Dataset,
        duration: float,
        checkpoint_every: float,
        record_initial: bool = True,
    ) -> EventResult:
        """Drive ``algorithm`` (an async variant already ``setup()``)
        until the simulated clock reaches ``duration``, snapshotting
        metrics every ``checkpoint_every`` simulated seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        algorithm.bind(self)
        self._algorithm = algorithm
        result = EventResult(
            algorithm=algorithm.name, trace=self.trace, horizon=float(duration)
        )
        if self.faults_active:
            self._schedule_faults(float(duration))

        def snapshot(at: float) -> None:
            # Algorithms without TrainingWorkers (the million-client
            # sampled driver) evaluate their own consensus model; the
            # worker-backed variants go through the shared probe worker.
            evaluator = getattr(algorithm, "evaluate_consensus_model", None)
            with obs.phase("eval"):
                if evaluator is not None:
                    val_loss, val_accuracy = evaluator(validation)
                else:
                    val_loss, val_accuracy = evaluate_consensus(
                        algorithm, validation
                    )
            staleness = getattr(algorithm, "staleness_log", [])
            result.history.append(
                TimedRecord(
                    time_s=at,
                    train_loss=algorithm.mean_train_loss,
                    val_loss=val_loss,
                    val_accuracy=val_accuracy,
                    consensus_distance=algorithm.consensus_distance(),
                    worker_traffic_mb=self.network.meter.mean_worker_traffic_mb(),
                    server_traffic_mb=self.network.server_traffic_mb(),
                    events_processed=self.events_processed,
                    local_steps=algorithm.total_local_steps,
                    mean_staleness=(
                        float(np.mean(staleness)) if staleness else 0.0
                    ),
                )
            )
            if obs.enabled():
                # Per-checkpoint snapshot stream: the async engine has
                # no rounds, so checkpoints index the delta stream.
                obs.mirror_network(self.network)
                obs.mirror_resilience(self.resilience)
                obs.mirror_arena(getattr(algorithm, "arena", None))
                obs.end_round(len(result.history) - 1)

        algorithm.start()
        if record_initial:
            snapshot(0.0)
        # Checkpoint times are k * checkpoint_every (multiplication, not
        # accumulation) so the final checkpoint lands exactly on a round
        # multiple of the interval instead of drifting past it.
        checkpoint_index = 1
        next_checkpoint = checkpoint_every
        while self.queue:
            time = self.queue.peek_time()
            if time > duration:
                break
            # Snapshots happen between events: state at a checkpoint is
            # the state after every event strictly before it.
            while next_checkpoint <= time:
                snapshot(next_checkpoint)
                checkpoint_index += 1
                next_checkpoint = checkpoint_index * checkpoint_every
            time, action = self.queue.pop()
            self.now = time
            self.events_processed += 1
            if self.events_processed > self.MAX_EVENTS:
                raise RuntimeError(
                    "event budget exhausted — the schedule is not advancing "
                    "simulated time (no compute model and no bandwidth?)"
                )
            action(time)
        self.now = float(duration)
        while next_checkpoint <= duration:
            snapshot(next_checkpoint)
            checkpoint_index += 1
            next_checkpoint = checkpoint_index * checkpoint_every
        if not result.history or result.history[-1].time_s < duration:
            snapshot(float(duration))
        result.staleness = list(getattr(algorithm, "staleness_log", []))
        result.total_local_steps = algorithm.total_local_steps
        result.events_processed = self.events_processed
        if self.resilience is not None:
            self.resilience.close(float(duration))
            result.resilience = self.resilience
        if obs.enabled():
            obs.mirror_network(self.network)
            obs.mirror_resilience(self.resilience)
            obs.mirror_arena(getattr(algorithm, "arena", None))
            obs.gauge("run.events", float(self.events_processed))
            obs.record_worker_timeline(self.trace, float(duration))
        return result


# ----------------------------------------------------------------------
# harness entry points
# ----------------------------------------------------------------------
def run_event_experiment(
    algorithm,
    partitions: Sequence[Dataset],
    validation: Dataset,
    model_factory: Callable,
    config: ExperimentConfig,
    network: Optional[SimulatedNetwork] = None,
    compute_model: Optional[ComputeModel] = None,
    churn=None,
    loss_model=None,
    duration: float = 30.0,
    checkpoint_every: Optional[float] = None,
    contention: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    exchange_policy: Optional[ExchangePolicy] = None,
    recovery: Optional[RecoveryPolicy] = None,
    scheduler: str = "calendar",
    population=None,
) -> EventResult:
    """Run an asynchronous algorithm variant on the event engine.

    The mirror of :func:`repro.sim.run_experiment` for the event-driven
    engine: builds workers (arena-backed, batched kernels and all), binds
    the algorithm, and runs for ``duration`` simulated seconds with
    checkpoints every ``checkpoint_every`` (default: 10 per run).
    Without a ``compute_model`` a :class:`ConstantCompute` of 0.1 s/step
    is assumed — an event simulation needs *some* notion of compute time
    for its clock to advance.

    ``fault_plan`` injects timed crash/recovery and link events
    (:mod:`repro.sim.faults`); ``exchange_policy`` and ``recovery``
    configure the deadline/retry and restart behaviour
    (:mod:`repro.resilience`).  A ``None`` or empty plan leaves the run
    bit-identical to a fault-free one.

    ``scheduler`` selects the queue implementation (``"calendar"``
    bucketed default, ``"heap"`` binary-heap oracle) — the two pop in
    identical order, so results are bit-identical either way.
    ``population`` is a client up/down arrival process
    (:mod:`repro.sim.population`); async algorithms defer cycle starts
    to each worker's next up-time instead of skipping per-cycle masks.
    """
    if network is None:
        network = SimulatedNetwork(num_workers=len(partitions))
    validation = validation.astype(resolve_dtype(config.dtype))
    if config.local_steps > 1 and hasattr(algorithm, "local_steps"):
        algorithm.local_steps = config.local_steps
    if compute_model is None:
        compute_model = ConstantCompute(0.1)
    workers = make_workers(model_factory, partitions, config)
    algorithm.setup(workers, network, rng=as_generator(config.seed))
    engine = EventEngine(
        network,
        compute_model=compute_model,
        churn=churn,
        loss_model=loss_model,
        contention=contention,
        fault_plan=fault_plan,
        exchange_policy=exchange_policy,
        recovery=recovery,
        scheduler=scheduler,
        population=population,
    )
    if checkpoint_every is None:
        checkpoint_every = duration / 10.0
    return engine.run(algorithm, validation, duration, checkpoint_every)


def run_sync_timeline(
    algorithm,
    partitions: Sequence[Dataset],
    validation: Dataset,
    model_factory: Callable,
    config: ExperimentConfig,
    network: Optional[SimulatedNetwork] = None,
    compute_model: Optional[ComputeModel] = None,
    contention: bool = False,
) -> EventResult:
    """Replay a round-synchronous algorithm on the event timeline.

    The algorithm's numerics are untouched (``run_round`` executes
    exactly as under :func:`repro.sim.run_experiment`); the engine then
    lays the round out on the simulated clock: one compute interval per
    participant, then the round's recorded transfers, then the barrier.
    With no contention the barrier reproduces the synchronous
    ``CommunicationTimer``/``ComputeModel`` totals to float tolerance —
    the degenerate-case oracle.  With ``contention=True`` transfers that
    share link ends serialize, which is the event engine's default
    behaviour and *not* expressible by the synchronous timer's
    max-of-transfers.

    Only single-phase rounds are replayed (all seven paper algorithms);
    an algorithm closing multiple timer phases per round would replay
    its last phase only.
    """
    if network is None:
        network = SimulatedNetwork(num_workers=len(partitions))
    validation = validation.astype(resolve_dtype(config.dtype))
    if config.local_steps > 1 and hasattr(algorithm, "local_steps"):
        algorithm.local_steps = config.local_steps
    workers = make_workers(model_factory, partitions, config)
    algorithm.setup(workers, network, rng=as_generator(config.seed))
    engine = EventEngine(
        network, compute_model=compute_model, contention=contention
    )
    trace = engine.trace
    result = EventResult(algorithm=algorithm.name, trace=trace)

    comm_total = 0.0
    compute_total = 0.0
    steps_total = 0
    running_loss = float("nan")

    def snapshot(round_index: int) -> None:
        with obs.phase("eval"):
            val_loss, val_accuracy = evaluate_consensus(algorithm, validation)
        result.history.append(
            TimedRecord(
                time_s=engine.now,
                train_loss=running_loss,
                val_loss=val_loss,
                val_accuracy=val_accuracy,
                consensus_distance=algorithm.consensus_distance(),
                worker_traffic_mb=network.meter.mean_worker_traffic_mb(),
                server_traffic_mb=network.server_traffic_mb(),
                events_processed=round_index + 1,
                local_steps=steps_total,
                comm_time_s=comm_total,
                compute_time_s=compute_total,
            )
        )

    milestones = set(config.lr_milestones or [])
    for round_index in range(config.rounds):
        if round_index in milestones:
            for worker in workers:
                worker.optimizer.lr *= config.lr_gamma
        with obs.phase("round"):
            running_loss = algorithm.run_round(round_index)

        # Compute phase: every participant runs its local steps starting
        # at the last barrier; the phase ends when the straggler does.
        participants = getattr(algorithm, "last_participants", None)
        if participants is None:
            participants = range(engine.num_workers)
        participants = list(participants)
        steps = getattr(algorithm, "local_steps", 1)
        start = engine.now
        compute_end = start
        for rank in participants:
            dt = engine.compute_seconds(round_index, rank, steps)
            trace.add(rank, "compute", start, start + dt)
            compute_end = max(compute_end, start + dt)
        steps_total += steps * len(participants)

        # Communication phase: replay the round's recorded transfers.
        # All start at the compute barrier; under contention, shared
        # link ends serialize through the engine's link clocks (same
        # greedy reservation the timer and start_transfer use).
        barrier = compute_end
        for duration, endpoints in network.timer.last_round_transfers:
            if contention:
                begin, end = CommunicationTimer.reserve_endpoints(
                    compute_end, duration, endpoints, engine._link_free
                )
            else:
                begin, end = compute_end, compute_end + duration
            if endpoints:
                for kind, node in endpoints:
                    if node != TrafficMeter.SERVER:
                        trace.add(node, "comm", begin, end)
            else:
                # Aggregate/collective transfers (PSGD's ring all-reduce,
                # the sparse allgather, the non-contended server batch)
                # declare no link ends but involve every participant —
                # attribute the interval to all of them so the timeline
                # breakdown does not book collective time as idle.
                for node in participants:
                    trace.add(node, "comm", begin, end)
            barrier = max(barrier, end)

        result.round_compute_seconds.append(compute_end - start)
        result.round_comm_seconds.append(barrier - compute_end)
        compute_total += compute_end - start
        comm_total += barrier - compute_end
        engine.now = barrier

        if obs.enabled():
            obs.observe("round.compute_s", compute_end - start)
            obs.observe("round.comm_s", barrier - compute_end)
            obs.mirror_network(network)
            obs.end_round(round_index)

        is_last = round_index == config.rounds - 1
        if (round_index + 1) % config.eval_every == 0 or is_last:
            snapshot(round_index)
    result.horizon = engine.now
    if obs.enabled():
        obs.gauge("run.rounds", float(config.rounds))
        obs.mirror_arena(getattr(algorithm, "arena", None))
        obs.record_worker_timeline(trace, engine.now)
    return result
