"""Local training state of one simulated worker.

:class:`TrainingWorker` bundles a model replica, a data shard, a loss and
an optimizer — Algorithm 2's ``SGD(net, D_p, L)`` — and exposes the two
operations the distributed algorithms need: apply one local SGD step, or
just *compute* the gradient (for algorithms that average gradients before
stepping, like PSGD).

The per-worker loop here also doubles as the **equivalence oracle** for
the batched :class:`~repro.sim.cluster.ClusterTrainer`: for every
architecture the batched kernels cover (the MLP/logistic family and, as
of the batched conv kernels, the TinyCNN / MnistCNN / Cifar10CNN
Conv/pool/Flatten/Dropout chains) the batched step must reproduce
``local_step`` bit for bit — enforced by ``tests/test_cluster_trainer.py``.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.data.loader import DataLoader
from repro.nn.losses import CrossEntropyLoss, accuracy
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.utils import parallel
from repro.utils.rng import SeedLike, as_generator


def evaluate_forward(
    forward: Callable[[np.ndarray], np.ndarray],
    dataset: Dataset,
    dtype,
    batch_size: int = 256,
    thread_forward: Optional[Callable[[], Callable[[np.ndarray], np.ndarray]]] = None,
) -> Tuple[float, float]:
    """``(mean_loss, top1_accuracy)`` of a logits function over a dataset.

    The one evaluation loop shared by :meth:`TrainingWorker.evaluate`
    and the batched consensus path
    (:meth:`repro.sim.cluster.ClusterTrainer.evaluate_vector`) — both
    must stay numerically identical, so the batching, loss accumulation
    and accuracy count live here once.  The dataset is cast once against
    ``dtype`` up front (a float64 validation set fed to a float32 model
    used to upcast every forward pass to a throwaway float64
    computation, batch by batch; no-op when the dtypes agree).

    ``thread_forward`` (optional) is a zero-argument factory returning a
    forward bound to the *calling thread's* private execution state.
    Model forwards cache activations on themselves, so a shared
    ``forward`` must never run batches concurrently — but a caller that
    can mint per-thread forwards (the :class:`ClusterTrainer`'s
    per-thread kernel chains) opts evaluation into the configured thread
    pool.  Batches are independent forwards; the float loss fold happens
    on the caller's thread in batch order, so the result is
    bit-identical to the serial loop at any thread count.
    """
    if dataset.features.dtype != dtype:
        dataset = dataset.astype(dtype)
    bounds = parallel.block_ranges(len(dataset), batch_size)

    def eval_batch(bound, batch_forward, loss_fn):
        start, stop = bound
        features = dataset.features[start:stop]
        labels = dataset.labels[start:stop]
        logits = batch_forward(features)
        loss, _ = loss_fn(logits, labels)
        return (
            loss * len(labels),
            int(np.sum(np.argmax(logits, axis=1) == labels)),
            len(labels),
        )

    if (
        thread_forward is not None
        and parallel.num_threads() > 1
        and len(bounds) > 1
    ):
        local = threading.local()

        def run(bound):
            if not hasattr(local, "forward"):
                local.forward = thread_forward()
                local.loss_fn = CrossEntropyLoss()
            return eval_batch(bound, local.forward, local.loss_fn)

        parts = parallel.parallel_map(run, bounds)
    else:
        loss_fn = CrossEntropyLoss()
        parts = [eval_batch(bound, forward, loss_fn) for bound in bounds]

    loss_sum = 0.0
    correct = 0
    total = 0
    # Batch-order fold: the same float additions, in the same order, as
    # the historical accumulate-in-loop — threads change nothing.
    for batch_loss, batch_correct, count in parts:
        loss_sum += batch_loss
        correct += batch_correct
        total += count
    return float(loss_sum / total), correct / total


class TrainingWorker:
    """One worker's local model, shard and optimizer.

    Parameters mirror the paper's Table II settings: batch size and
    learning rate are per-worker.
    """

    def __init__(
        self,
        rank: int,
        model: Module,
        shard: Dataset,
        batch_size: int,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        rng: SeedLike = None,
    ) -> None:
        self.rank = rank
        self.model = model
        self.loader = DataLoader(shard, batch_size, rng=as_generator(rng))
        self.loss_fn = CrossEntropyLoss()
        self.optimizer = SGD(
            model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
        )
        self.steps_taken = 0
        self.last_loss: Optional[float] = None

    # ------------------------------------------------------------------
    # local computation
    # ------------------------------------------------------------------
    def local_step(self) -> float:
        """One mini-batch SGD step on the local shard; returns the loss."""
        features, labels = self.loader.sample()
        self.model.train()
        self.model.zero_grad()
        logits = self.model.forward(features)
        loss, grad = self.loss_fn(logits, labels)
        self.model.backward(grad)
        self.optimizer.step()
        self.steps_taken += 1
        self.last_loss = loss
        return loss

    def compute_gradient(self) -> Tuple[float, np.ndarray]:
        """Gradient of one sampled mini-batch at the current parameters,
        *without* applying it.  Returns ``(loss, flat_gradient)``."""
        features, labels = self.loader.sample()
        self.model.train()
        self.model.zero_grad()
        logits = self.model.forward(features)
        loss, grad = self.loss_fn(logits, labels)
        self.model.backward(grad)
        self.last_loss = loss
        return loss, self.model.get_flat_grads()

    def apply_gradient(self, flat_gradient: np.ndarray, lr: Optional[float] = None) -> None:
        """Apply ``x ← x − lr·g`` for an externally supplied gradient."""
        step = self.optimizer.lr if lr is None else lr
        flat = self.model._flat_view
        if flat is not None:
            # Arena-backed: update the row in place (no concat/split).
            flat -= step * np.asarray(flat_gradient)
        else:
            self.set_params(self.get_params() - step * np.asarray(flat_gradient))
        self.steps_taken += 1

    # ------------------------------------------------------------------
    # flat-vector access
    # ------------------------------------------------------------------
    def get_params(self) -> np.ndarray:
        """Flat model vector — a live arena-row view when arena-backed
        (zero-copy), a fresh copy otherwise.  Use
        :meth:`snapshot_params` when the result must survive updates."""
        return self.model.get_flat_params()

    def snapshot_params(self) -> np.ndarray:
        """Independent copy of the flat model, safe to hold across
        parameter updates regardless of arena backing (and without
        double-copying on the fallback path)."""
        flat = self.model._flat_view
        return flat.copy() if flat is not None else self.model.get_flat_params()

    def set_params(self, vector: np.ndarray) -> None:
        self.model.set_flat_params(vector)

    @property
    def model_size(self) -> int:
        return self.model.num_parameters()

    @property
    def dtype(self) -> np.dtype:
        """Numeric dtype of the local replica (float32/float64)."""
        return self.model.dtype

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, dataset: Dataset, batch_size: int = 256) -> Tuple[float, float]:
        """``(mean_loss, top1_accuracy)`` of the current model on a
        dataset, in eval mode (cast once against the model dtype — see
        :func:`evaluate_forward`)."""
        self.model.eval()
        result = evaluate_forward(
            self.model.forward, dataset, self.model.dtype, batch_size
        )
        self.model.train()
        return result
