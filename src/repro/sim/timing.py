"""Per-worker compute-time models (stragglers).

The paper's Fig. 6 footnote: "Due to the diversity of computing resources
(e.g., CPU and GPU), the computation time may be various. So we mainly
focus on the comparison of communication time, while the end-to-end
training time can also be obtained accordingly."  This module provides
that "accordingly": per-worker step-time models so the engine can report
compute time and end-to-end time next to communication time.

A synchronous round's compute time is the *maximum* over participating
workers (the barrier waits for the straggler); FedAvg-style partial
participation only waits for the sampled workers — measurable here.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


class ComputeModel:
    """Interface: seconds worker ``rank`` needs for ``steps`` local SGD
    steps in round ``round_index``."""

    def step_time(self, round_index: int, rank: int, steps: int = 1) -> float:
        raise NotImplementedError

    def round_time(
        self,
        round_index: int,
        participants: Sequence[int],
        steps: int = 1,
    ) -> float:
        """Synchronous barrier: slowest participant gates the round."""
        if not list(participants):
            return 0.0
        return max(
            self.step_time(round_index, rank, steps) for rank in participants
        )


class ConstantCompute(ComputeModel):
    """Every worker takes exactly ``seconds_per_step``."""

    def __init__(self, seconds_per_step: float = 0.1) -> None:
        check_positive(seconds_per_step, "seconds_per_step")
        self.seconds_per_step = float(seconds_per_step)

    def step_time(self, round_index: int, rank: int, steps: int = 1) -> float:
        return self.seconds_per_step * steps


class HeterogeneousCompute(ComputeModel):
    """Per-worker mean speeds with log-normal per-round jitter.

    Worker means are drawn once (log-uniform over
    ``[mean_step_time/spread, mean_step_time*spread]``), modelling a
    mixed fleet (GPU boxes next to laptops); each round each worker
    jitters around its mean.
    """

    def __init__(
        self,
        num_workers: int,
        mean_step_time: float = 0.1,
        spread: float = 4.0,
        jitter: float = 0.1,
        rng: SeedLike = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        check_positive(mean_step_time, "mean_step_time")
        if spread < 1.0:
            raise ValueError(f"spread must be >= 1, got {spread}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.num_workers = num_workers
        self.jitter = jitter
        self._rng = as_generator(rng)
        log_low, log_high = (
            np.log(mean_step_time / spread), np.log(mean_step_time * spread)
        )
        self.worker_means = np.exp(
            self._rng.uniform(log_low, log_high, size=num_workers)
        )

    def step_time(self, round_index: int, rank: int, steps: int = 1) -> float:
        if not 0 <= rank < self.num_workers:
            raise ValueError(f"rank {rank} out of range")
        # Deterministic per (round, rank) jitter so queries are stable.
        jitter_rng = np.random.default_rng(
            (round_index * 1_000_003 + rank) & 0x7FFFFFFF
        )
        factor = np.exp(jitter_rng.normal(0.0, self.jitter))
        return float(self.worker_means[rank] * factor * steps)

    @property
    def straggler_rank(self) -> int:
        """The slowest worker on average."""
        return int(np.argmax(self.worker_means))

    def imbalance(self) -> float:
        """Slowest/fastest mean step-time ratio."""
        return float(self.worker_means.max() / self.worker_means.min())
