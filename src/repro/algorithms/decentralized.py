"""D-PSGD and DCD-PSGD decentralized baselines (ring topology).

* :class:`DPSGD` — Lian et al.: ``x_i ← Σ_j W_ij x_j − γ g_i`` with a
  fixed ring gossip matrix; both neighbours receive the *full* model
  every round (Table I: ``4 n_p N T``).
* :class:`DCDPSGD` — Tang et al.: each worker keeps replicas ``x̂_j`` of
  its neighbours' models and exchanges only a compressed model
  *difference*; the replicas integrate the differences identically on
  both sides.  The paper sets ``c = 4`` ("if c is larger than 4, it
  would lose much accuracy"), which our bench inherits.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.algorithms.base import DistributedAlgorithm
from repro.compression.base import BYTES_PER_VALUE
from repro.compression.topk import TopKCompressor
from repro.core.gossip import ring_gossip_matrix


class DPSGD(DistributedAlgorithm):
    """Decentralized parallel SGD on a fixed ring."""

    name = "D-PSGD"

    def _after_setup(self) -> None:
        # Mixing weights live in the workers' dtype so float32 runs mix
        # without upcast temporaries (no-op cast at float64).
        dtype = (
            self.arena.dtype
            if self.arena is not None
            else self.workers[0].model.dtype
        )
        self.gossip = ring_gossip_matrix(self.num_workers).astype(dtype, copy=False)

    def _ring_neighbors(self, rank: int) -> List[int]:
        n = self.num_workers
        return [(rank - 1) % n, (rank + 1) % n]

    def _ring_link_bandwidth(self, a: int, b: int) -> float:
        if self.network.bandwidth is None:
            return 0.0
        return float(self.network.bandwidth[a, b])

    def run_round(self, round_index: int) -> float:
        if self.arena is not None:
            losses = self._local_gradients_into_arena()
            self._account_ring_traffic(round_index)

            # Vectorized ring mixing over the replica matrix.  The
            # accumulation order (self, left neighbour, right neighbour)
            # matches the per-worker loop, so results are bit-identical.
            replicas = self.arena.data
            n = self.num_workers
            ranks = np.arange(n)
            prev_ranks = (ranks - 1) % n
            next_ranks = (ranks + 1) % n
            self_w = np.diag(self.gossip)[:, None]
            prev_w = self.gossip[ranks, prev_ranks][:, None]
            next_w = self.gossip[ranks, next_ranks][:, None]
            mixed = self_w * replicas
            mixed = mixed + prev_w * replicas[prev_ranks]
            mixed = mixed + next_w * replicas[next_ranks]
            rates = np.array([w.optimizer.lr for w in self.workers])
            replicas[...] = mixed - rates[:, None] * self.arena.grads
            for worker in self.workers:
                worker.steps_taken += 1
        else:
            losses = []
            gradients = []
            # Snapshots: a worker adopted into an arena the setup did not
            # detect (subset/reordered workers) would otherwise hand out
            # live row views that later set_params calls mutate mid-loop.
            params = [worker.snapshot_params() for worker in self.workers]
            for worker in self.workers:
                loss, gradient = worker.compute_gradient()
                losses.append(loss)
                gradients.append(gradient)
            self._account_ring_traffic(round_index)

            for rank, worker in enumerate(self.workers):
                neighbors = self._ring_neighbors(rank)
                mixed = self.gossip[rank, rank] * params[rank]
                for neighbor in neighbors:
                    mixed = mixed + self.gossip[rank, neighbor] * params[neighbor]
                lr = worker.optimizer.lr
                worker.set_params(mixed - lr * gradients[rank])
                worker.steps_taken += 1
        self.network.finish_round()
        return float(np.mean(losses))

    def _account_ring_traffic(self, round_index: int) -> None:
        """Meter both neighbours' full models arriving at each worker."""
        model_bytes = self.model_size * BYTES_PER_VALUE
        for rank in range(self.num_workers):
            for neighbor in self._ring_neighbors(rank):
                self.network.meter.record(
                    round_index, neighbor, rank, model_bytes
                )
                if self.network.bandwidth is not None:
                    self.network.timer.add_transfer(
                        model_bytes,
                        self._ring_link_bandwidth(neighbor, rank),
                        endpoints=self.network.link_endpoints(neighbor, rank),
                    )


class DCDPSGD(DPSGD):
    """Difference-compressed D-PSGD with neighbour replicas."""

    name = "DCD-PSGD"

    def __init__(self, compression_ratio: float = 4.0) -> None:
        super().__init__()
        self.compressor = TopKCompressor(compression_ratio)

    def _after_setup(self) -> None:
        super()._after_setup()
        initial = self.workers[0].get_params()
        # replicas[i][j]: worker i's public copy of worker j's model, for
        # j in {i} ∪ neighbours(i).  All start at the shared init, so all
        # copies of the same worker stay bit-identical forever (the DCD
        # invariant — each side integrates the same compressed deltas).
        self.replicas: List[Dict[int, np.ndarray]] = []
        for rank in range(self.num_workers):
            owned = {rank: initial.copy()}
            for neighbor in self._ring_neighbors(rank):
                owned[neighbor] = initial.copy()
            self.replicas.append(owned)

    def run_round(self, round_index: int) -> float:
        if self.cluster_trainer is not None:
            # Batched gradient phase; each worker's mini-batch gradient
            # is its (live) row of the arena grad matrix.
            losses = self.cluster_trainer.compute_gradients()
            gradients = self.arena.grads
        else:
            losses = []
            gradients = []
            for worker in self.workers:
                loss, gradient = worker.compute_gradient()
                losses.append(loss)
                gradients.append(gradient)

        # Phase 1: local updates from replicas; collect the model deltas
        # as one (n, N) matrix, then compress all rows in a single
        # batched top-k pass (deterministic, so identical to compressing
        # each worker's delta on its own).
        delta_matrix = np.empty(
            (self.num_workers, self.model_size),
            dtype=self.workers[0].model.dtype,
        )
        for rank, worker in enumerate(self.workers):
            mixed = self.gossip[rank, rank] * self.replicas[rank][rank]
            for neighbor in self._ring_neighbors(rank):
                mixed = mixed + self.gossip[rank, neighbor] * self.replicas[rank][neighbor]
            lr = worker.optimizer.lr
            new_params = mixed - lr * gradients[rank]
            worker.set_params(new_params)
            worker.steps_taken += 1
            delta_matrix[rank] = new_params - self.replicas[rank][rank]
        batch = self.compressor.compress_matrix(delta_matrix, round_index)
        deltas = batch.to_dense(self.model_size)
        payload_bytes = batch.row_bytes()

        # Phase 2: everyone integrates the same deltas into replicas.
        for rank in range(self.num_workers):
            self.replicas[rank][rank] += deltas[rank]
            for neighbor in self._ring_neighbors(rank):
                self.replicas[neighbor][rank] += deltas[rank]
                self.network.meter.record(
                    round_index, rank, neighbor, payload_bytes[rank]
                )
                if self.network.bandwidth is not None:
                    self.network.timer.add_transfer(
                        payload_bytes[rank],
                        self._ring_link_bandwidth(rank, neighbor),
                        endpoints=self.network.link_endpoints(rank, neighbor),
                    )
        self.network.finish_round()
        return float(np.mean(losses))
