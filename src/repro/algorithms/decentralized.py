"""D-PSGD and DCD-PSGD decentralized baselines (ring topology).

* :class:`DPSGD` — Lian et al.: ``x_i ← Σ_j W_ij x_j − γ g_i`` with a
  fixed ring gossip matrix; both neighbours receive the *full* model
  every round (Table I: ``4 n_p N T``).
* :class:`DCDPSGD` — Tang et al.: each worker keeps replicas ``x̂_j`` of
  its neighbours' models and exchanges only a compressed model
  *difference*; the replicas integrate the differences identically on
  both sides.  The paper sets ``c = 4`` ("if c is larger than 4, it
  would lose much accuracy"), which our bench inherits.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.algorithms.base import DistributedAlgorithm
from repro.compression.base import BYTES_PER_VALUE
from repro.compression.topk import TopKCompressor
from repro.core.gossip import ring_gossip_matrix


class DPSGD(DistributedAlgorithm):
    """Decentralized parallel SGD on a fixed ring."""

    name = "D-PSGD"

    def _after_setup(self) -> None:
        self.gossip = ring_gossip_matrix(self.num_workers)

    def _ring_neighbors(self, rank: int) -> List[int]:
        n = self.num_workers
        return [(rank - 1) % n, (rank + 1) % n]

    def _ring_link_bandwidth(self, a: int, b: int) -> float:
        if self.network.bandwidth is None:
            return 0.0
        return float(self.network.bandwidth[a, b])

    def run_round(self, round_index: int) -> float:
        losses = []
        gradients = []
        params = [worker.get_params() for worker in self.workers]
        for worker in self.workers:
            loss, gradient = worker.compute_gradient()
            losses.append(loss)
            gradients.append(gradient)

        model_bytes = self.model_size * BYTES_PER_VALUE
        for rank, worker in enumerate(self.workers):
            neighbors = self._ring_neighbors(rank)
            mixed = self.gossip[rank, rank] * params[rank]
            for neighbor in neighbors:
                mixed = mixed + self.gossip[rank, neighbor] * params[neighbor]
                # The neighbour's model arriving at `rank`.
                self.network.meter.record(
                    round_index, neighbor, rank, model_bytes
                )
                if self.network.bandwidth is not None:
                    self.network.timer.add_transfer(
                        model_bytes, self._ring_link_bandwidth(neighbor, rank)
                    )
            lr = worker.optimizer.lr
            worker.set_params(mixed - lr * gradients[rank])
            worker.steps_taken += 1
        self.network.finish_round()
        return float(np.mean(losses))


class DCDPSGD(DPSGD):
    """Difference-compressed D-PSGD with neighbour replicas."""

    name = "DCD-PSGD"

    def __init__(self, compression_ratio: float = 4.0) -> None:
        super().__init__()
        self.compressor = TopKCompressor(compression_ratio)

    def _after_setup(self) -> None:
        super()._after_setup()
        initial = self.workers[0].get_params()
        # replicas[i][j]: worker i's public copy of worker j's model, for
        # j in {i} ∪ neighbours(i).  All start at the shared init, so all
        # copies of the same worker stay bit-identical forever (the DCD
        # invariant — each side integrates the same compressed deltas).
        self.replicas: List[Dict[int, np.ndarray]] = []
        for rank in range(self.num_workers):
            owned = {rank: initial.copy()}
            for neighbor in self._ring_neighbors(rank):
                owned[neighbor] = initial.copy()
            self.replicas.append(owned)

    def run_round(self, round_index: int) -> float:
        losses = []
        gradients = []
        for worker in self.workers:
            loss, gradient = worker.compute_gradient()
            losses.append(loss)
            gradients.append(gradient)

        # Phase 1: local updates from replicas; build compressed deltas.
        deltas = []
        payload_bytes = []
        for rank, worker in enumerate(self.workers):
            mixed = self.gossip[rank, rank] * self.replicas[rank][rank]
            for neighbor in self._ring_neighbors(rank):
                mixed = mixed + self.gossip[rank, neighbor] * self.replicas[rank][neighbor]
            lr = worker.optimizer.lr
            new_params = mixed - lr * gradients[rank]
            worker.set_params(new_params)
            worker.steps_taken += 1
            payload = self.compressor.compress(
                new_params - self.replicas[rank][rank], round_index
            )
            deltas.append(payload.to_dense(self.model_size))
            payload_bytes.append(payload.num_bytes())

        # Phase 2: everyone integrates the same deltas into replicas.
        for rank in range(self.num_workers):
            self.replicas[rank][rank] += deltas[rank]
            for neighbor in self._ring_neighbors(rank):
                self.replicas[neighbor][rank] += deltas[rank]
                self.network.meter.record(
                    round_index, rank, neighbor, payload_bytes[rank]
                )
                if self.network.bandwidth is not None:
                    self.network.timer.add_transfer(
                        payload_bytes[rank],
                        self._ring_link_bandwidth(rank, neighbor),
                    )
        self.network.finish_round()
        return float(np.mean(losses))
