"""D-PSGD and DCD-PSGD decentralized baselines (ring topology).

* :class:`DPSGD` — Lian et al.: ``x_i ← Σ_j W_ij x_j − γ g_i`` with a
  fixed ring gossip matrix; both neighbours receive the *full* model
  every round (Table I: ``4 n_p N T``).
* :class:`DCDPSGD` — Tang et al.: each worker keeps replicas ``x̂_j`` of
  its neighbours' models and exchanges only a compressed model
  *difference*; the replicas integrate the differences identically on
  both sides.  The paper sets ``c = 4`` ("if c is larger than 4, it
  would lose much accuracy"), which our bench inherits.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import obs
from repro.algorithms.base import DistributedAlgorithm
from repro.compression.base import BYTES_PER_VALUE
from repro.compression.topk import TopKCompressor
from repro.core.gossip import ring_gossip_matrix


class DPSGD(DistributedAlgorithm):
    """Decentralized parallel SGD on a fixed ring."""

    name = "D-PSGD"

    #: Selects the fused row-blocked arena mix (:meth:`_mix_arena_fused`).
    #: ``False`` restores the historical whole-matrix expression, kept as
    #: the equivalence oracle and the bench baseline — both produce
    #: bit-identical replicas.
    fused_mix = True

    def _after_setup(self) -> None:
        # Mixing weights live in the workers' dtype so float32 runs mix
        # without upcast temporaries (no-op cast at float64).
        dtype = (
            self.arena.dtype
            if self.arena is not None
            else self.workers[0].model.dtype
        )
        self.gossip = ring_gossip_matrix(self.num_workers).astype(dtype, copy=False)
        # Persistent (n, N) pair for the fused mix: the mixed-model
        # accumulator and the neighbour-gather scratch.  Allocated on
        # first use, reused every round.
        self._mix_buf: np.ndarray | None = None
        self._mix_tmp: np.ndarray | None = None

    def _ring_neighbors(self, rank: int) -> List[int]:
        n = self.num_workers
        return [(rank - 1) % n, (rank + 1) % n]

    def _ring_link_bandwidth(self, a: int, b: int) -> float:
        if self.network.bandwidth is None:
            return 0.0
        return float(self.network.bandwidth[a, b])

    def _ring_mix_terms(self):
        """Neighbour index vectors and per-row mixing weights (columns)."""
        n = self.num_workers
        ranks = np.arange(n)
        prev_ranks = (ranks - 1) % n
        next_ranks = (ranks + 1) % n
        self_w = np.diag(self.gossip)[:, None]
        prev_w = self.gossip[ranks, prev_ranks][:, None]
        next_w = self.gossip[ranks, next_ranks][:, None]
        rates = np.array([w.optimizer.lr for w in self.workers])
        return prev_ranks, next_ranks, self_w, prev_w, next_w, rates

    def _mix_arena_unfused(self) -> None:
        """The historical whole-matrix ring mix (oracle / bench baseline).

        The accumulation order (self, left neighbour, right neighbour)
        matches the per-worker loop, so results are bit-identical to the
        fallback path — and :meth:`_mix_arena_fused` matches this method
        bit-for-bit in turn.
        """
        replicas = self.arena.data
        prev_ranks, next_ranks, self_w, prev_w, next_w, rates = (
            self._ring_mix_terms()
        )
        mixed = self_w * replicas
        mixed = mixed + prev_w * replicas[prev_ranks]
        mixed = mixed + next_w * replicas[next_ranks]
        replicas[...] = mixed - rates[:, None] * self.arena.grads

    def _mix_arena_fused(self) -> None:
        """Fused row-blocked ring mix: one cache-hot pass per block.

        Each block accumulates its mixed rows into a persistent ``(n, N)``
        buffer with in-place ufuncs — the only transient left is the
        float64 learning-rate product when the arena is float32 (the
        unfused expression upcasts there, and matching it bit-for-bit
        requires the same promotion).  Blocks write disjoint buffer rows
        while only *reading* the replica matrix, so they run on the
        configured thread pool; the write-back happens after the barrier,
        once no block still needs a neighbour's old row.  Per element the
        kernel sequence and operand order equal the whole-matrix
        expression, so the result is bit-identical at every dtype and
        thread count.
        """
        from repro.utils import parallel

        replicas = self.arena.data
        grads = self.arena.grads
        prev_ranks, next_ranks, self_w, prev_w, next_w, rates = (
            self._ring_mix_terms()
        )
        if self._mix_buf is None or self._mix_buf.shape != replicas.shape:
            self._mix_buf = np.empty_like(replicas)
            self._mix_tmp = np.empty_like(replicas)
        buf = self._mix_buf
        tmp = self._mix_tmp
        same_dtype = rates.dtype == replicas.dtype

        def mix_block(bound) -> None:
            start, stop = bound
            b = buf[start:stop]
            t = tmp[start:stop]
            np.multiply(self_w[start:stop], replicas[start:stop], out=b)
            np.take(replicas, prev_ranks[start:stop], axis=0, out=t)
            np.multiply(prev_w[start:stop], t, out=t)
            np.add(b, t, out=b)
            np.take(replicas, next_ranks[start:stop], axis=0, out=t)
            np.multiply(next_w[start:stop], t, out=t)
            np.add(b, t, out=b)
            if same_dtype:
                np.multiply(rates[start:stop, None], grads[start:stop], out=t)
                np.subtract(b, t, out=b)
            else:
                # float32 arena: the unfused expression promotes through
                # the float64 rates and rounds once on assignment —
                # replicate that exactly (the float64 transient is one
                # block, not the full matrix).
                b[...] = b - rates[start:stop, None] * grads[start:stop]

        parallel.parallel_map(
            mix_block,
            parallel.block_ranges(self.num_workers, self._mix_block_rows()),
            phase="mix.block",
        )
        # Barrier passed: every block has read the neighbour rows it
        # needs, so the replica matrix can take the new models.
        replicas[...] = buf

    def run_round(self, round_index: int) -> float:
        if self.arena is not None:
            losses = self._local_gradients_into_arena()
            with obs.phase("comm"):
                self._account_ring_traffic(round_index)
            with obs.phase("mix"):
                if self.fused_mix:
                    self._mix_arena_fused()
                else:
                    self._mix_arena_unfused()
            for worker in self.workers:
                worker.steps_taken += 1
        else:
            losses = []
            gradients = []
            # Snapshots: a worker adopted into an arena the setup did not
            # detect (subset/reordered workers) would otherwise hand out
            # live row views that later set_params calls mutate mid-loop.
            params = [worker.snapshot_params() for worker in self.workers]
            with obs.phase("compute"):
                for worker in self.workers:
                    loss, gradient = worker.compute_gradient()
                    losses.append(loss)
                    gradients.append(gradient)
            with obs.phase("comm"):
                self._account_ring_traffic(round_index)

            with obs.phase("mix"):
                for rank, worker in enumerate(self.workers):
                    neighbors = self._ring_neighbors(rank)
                    mixed = self.gossip[rank, rank] * params[rank]
                    for neighbor in neighbors:
                        mixed = (
                            mixed
                            + self.gossip[rank, neighbor] * params[neighbor]
                        )
                    lr = worker.optimizer.lr
                    worker.set_params(mixed - lr * gradients[rank])
                    worker.steps_taken += 1
        self.network.finish_round()
        return float(np.mean(losses))

    def _account_ring_traffic(self, round_index: int) -> None:
        """Meter both neighbours' full models arriving at each worker."""
        model_bytes = self.model_size * BYTES_PER_VALUE
        for rank in range(self.num_workers):
            for neighbor in self._ring_neighbors(rank):
                self.network.meter.record(
                    round_index, neighbor, rank, model_bytes
                )
                if self.network.bandwidth is not None:
                    self.network.timer.add_transfer(
                        model_bytes,
                        self._ring_link_bandwidth(neighbor, rank),
                        endpoints=self.network.link_endpoints(neighbor, rank),
                    )


class DCDPSGD(DPSGD):
    """Difference-compressed D-PSGD with neighbour replicas."""

    name = "DCD-PSGD"

    def __init__(self, compression_ratio: float = 4.0) -> None:
        super().__init__()
        self.compressor = TopKCompressor(compression_ratio)

    def _after_setup(self) -> None:
        super()._after_setup()
        initial = self.workers[0].get_params()
        # replicas[i][j]: worker i's public copy of worker j's model, for
        # j in {i} ∪ neighbours(i).  All start at the shared init, so all
        # copies of the same worker stay bit-identical forever (the DCD
        # invariant — each side integrates the same compressed deltas).
        self.replicas: List[Dict[int, np.ndarray]] = []
        for rank in range(self.num_workers):
            owned = {rank: initial.copy()}
            for neighbor in self._ring_neighbors(rank):
                owned[neighbor] = initial.copy()
            self.replicas.append(owned)

    def run_round(self, round_index: int) -> float:
        if self.cluster_trainer is not None:
            # Batched gradient phase; each worker's mini-batch gradient
            # is its (live) row of the arena grad matrix.
            losses = self.cluster_trainer.compute_gradients()
            gradients = self.arena.grads
        else:
            losses = []
            gradients = []
            with obs.phase("compute"):
                for worker in self.workers:
                    loss, gradient = worker.compute_gradient()
                    losses.append(loss)
                    gradients.append(gradient)

        # Phase 1: local updates from replicas; collect the model deltas
        # as one (n, N) matrix, then compress all rows in a single
        # batched top-k pass (deterministic, so identical to compressing
        # each worker's delta on its own).
        delta_matrix = np.empty(
            (self.num_workers, self.model_size),
            dtype=self.workers[0].model.dtype,
        )
        with obs.phase("mix"):
            for rank, worker in enumerate(self.workers):
                mixed = self.gossip[rank, rank] * self.replicas[rank][rank]
                for neighbor in self._ring_neighbors(rank):
                    mixed = (
                        mixed
                        + self.gossip[rank, neighbor]
                        * self.replicas[rank][neighbor]
                    )
                lr = worker.optimizer.lr
                new_params = mixed - lr * gradients[rank]
                worker.set_params(new_params)
                worker.steps_taken += 1
                delta_matrix[rank] = new_params - self.replicas[rank][rank]

        # Phase 2: everyone integrates the same deltas into replicas.
        with obs.phase("comm"):
            batch = self.compressor.compress_matrix(delta_matrix, round_index)
            deltas = batch.to_dense(self.model_size)
            payload_bytes = batch.row_bytes()
            for rank in range(self.num_workers):
                self.replicas[rank][rank] += deltas[rank]
                for neighbor in self._ring_neighbors(rank):
                    self.replicas[neighbor][rank] += deltas[rank]
                    self.network.meter.record(
                        round_index, rank, neighbor, payload_bytes[rank]
                    )
                    if self.network.bandwidth is not None:
                        self.network.timer.add_transfer(
                            payload_bytes[rank],
                            self._ring_link_bandwidth(rank, neighbor),
                            endpoints=self.network.link_endpoints(
                                rank, neighbor
                            ),
                        )
        self.network.finish_round()
        return float(np.mean(losses))
