"""The seven compared algorithms (paper Section IV) plus variants.

========================  =============================================
Class                     Paper algorithm
========================  =============================================
:class:`PSGD`             PSGD with all-reduce
:class:`TopKPSGD`         TopK-PSGD (c = 1000, error feedback)
:class:`FedAvg`           FedAvg (C = 0.5)
:class:`SparseFedAvg`     S-FedAvg (C = 0.5, c = 100)
:class:`DPSGD`            D-PSGD (ring)
:class:`DCDPSGD`          DCD-PSGD (ring, c = 4)
:class:`SAPSPSGD`         SAPS-PSGD (c = 100) — the contribution
:class:`RandomChoosePSGD` "RandomChoose" baseline from Fig. 5
========================  =============================================
"""

from repro.algorithms.base import DistributedAlgorithm
from repro.algorithms.psgd import PSGD, TopKPSGD
from repro.algorithms.fedavg import FedAvg, SparseFedAvg
from repro.algorithms.decentralized import DCDPSGD, DPSGD
from repro.algorithms.saps_psgd import RandomChoosePSGD, SAPSPSGD
from repro.algorithms.asynchronous import (
    AsyncAlgorithm,
    AsyncDPSGD,
    AsyncFedAvg,
    AsyncGossip,
)
from repro.algorithms.sampled import (
    LogisticBlobsTask,
    SampledAsyncFedAvg,
    SampledSAPS,
)

__all__ = [
    "DistributedAlgorithm",
    "PSGD",
    "TopKPSGD",
    "FedAvg",
    "SparseFedAvg",
    "DPSGD",
    "DCDPSGD",
    "SAPSPSGD",
    "RandomChoosePSGD",
    "AsyncAlgorithm",
    "AsyncDPSGD",
    "AsyncFedAvg",
    "AsyncGossip",
    "LogisticBlobsTask",
    "SampledAsyncFedAvg",
    "SampledSAPS",
]
