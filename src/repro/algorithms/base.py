"""Common interface of the seven compared distributed algorithms.

Each algorithm binds to a list of :class:`TrainingWorker` and a
:class:`SimulatedNetwork` (:meth:`DistributedAlgorithm.setup`) and then
executes synchronous communication rounds (:meth:`run_round`).  Traffic
and time fall out of the network's meters, so the harness can plot every
algorithm on the paper's axes without algorithm-specific glue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.network.transport import SimulatedNetwork
from repro.nn.arena import ParameterArena, shared_arena
from repro.utils.rng import SeedLike, as_generator

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sim
    from repro.sim.trainer import TrainingWorker


class DistributedAlgorithm:
    """Base class; subclasses implement :meth:`run_round`."""

    #: Human-readable algorithm name, matching the paper's legends.
    name: str = "base"

    def __init__(self) -> None:
        self.workers: List["TrainingWorker"] = []
        self.network: Optional[SimulatedNetwork] = None
        self._rng = as_generator(None)
        #: Workers that computed in the last round (None = all).  The
        #: engine's compute-time model reads this to bill stragglers.
        self.last_participants: Optional[List[int]] = None
        #: The shared :class:`ParameterArena` when every worker's model
        #: is a row of one arena (rank order); ``None`` selects the
        #: per-model fallback paths.  Set by :meth:`setup`.
        self.arena: Optional[ParameterArena] = None
        #: Batched local-step engine (:class:`repro.sim.cluster.ClusterTrainer`)
        #: when the arena-backed workers admit an exactly-equivalent
        #: batched path; ``None`` keeps the per-worker compute loop.
        #: Set by :meth:`setup`.
        self.cluster_trainer = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(
        self,
        workers: Sequence["TrainingWorker"],
        network: SimulatedNetwork,
        rng: SeedLike = None,
    ) -> None:
        """Bind workers and network; synchronize initial models.

        All algorithms start from identical parameters (the paper's
        consensus analysis notes ``‖X_0 − X̄_0 1ᵀ‖² = 0`` when workers
        share the initial model), taken from worker 0.
        """
        if len(workers) < 2:
            raise ValueError("distributed algorithms need at least 2 workers")
        if network.num_workers != len(workers):
            raise ValueError(
                f"network has {network.num_workers} endpoints for "
                f"{len(workers)} workers"
            )
        self.workers = list(workers)
        self.network = network
        self._rng = as_generator(rng)
        sizes = {worker.model_size for worker in self.workers}
        if len(sizes) != 1:
            raise ValueError(
                f"all workers must share one architecture; got model "
                f"sizes {sorted(sizes)}"
            )
        self.arena = shared_arena([worker.model for worker in self.workers])
        if self.arena is not None:
            # One broadcast over the replica matrix replaces n-1
            # concat/split round-trips.
            self.arena.broadcast_row(0)
            # Deferred import: repro.sim pulls in repro.algorithms at
            # package-import time (via the comparison harness).
            from repro.sim.cluster import ClusterTrainer

            self.cluster_trainer = ClusterTrainer.build(
                self.workers, arena=self.arena
            )
        else:
            self.cluster_trainer = None
            initial = self.workers[0].get_params()
            for worker in self.workers[1:]:
                worker.set_params(initial)
        self._after_setup()

    def _after_setup(self) -> None:
        """Hook for per-algorithm state (buffers, replicas, coordinator)."""

    # ------------------------------------------------------------------
    # the synchronous round
    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> float:
        """One communication round; returns the mean local training loss."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def model_size(self) -> int:
        return self.workers[0].model_size

    def _local_gradients_into_arena(self) -> np.ndarray:
        """One sampled mini-batch gradient per worker, left in
        ``arena.grads``; returns the per-worker losses (rank order).

        Batched through the :class:`ClusterTrainer` when available —
        bit-identical to the per-worker ``compute_gradient`` loop, which
        remains the fallback.  Requires an arena."""
        if self.cluster_trainer is not None:
            return self.cluster_trainer.compute_gradients()
        with obs.phase("compute"):
            return np.array(
                [worker.compute_gradient()[0] for worker in self.workers]
            )

    #: Row-block byte budget of the fused update/mix passes — same
    #: rationale as :attr:`repro.sim.cluster.ClusterTrainer.BLOCK_BYTES`:
    #: one block's rows and its scratch stay cache-resident, and the
    #: partition depends only on this constant (never the thread count),
    #: so blocked, threaded and whole-matrix execution all agree bitwise.
    MIX_BLOCK_BYTES = 8 << 20

    def _mix_block_rows(self) -> int:
        row_bytes = max(
            self.arena.model_size * self.arena.dtype.itemsize, 1
        )
        return max(1, self.MIX_BLOCK_BYTES // row_bytes)

    def _apply_average_gradient(self, average: np.ndarray) -> None:
        """``xᵢ ← xᵢ − lrᵢ·ḡ`` on every worker (the all-reduce update).

        Arena path: a fused row-blocked pass — each block scales the
        average gradient into a persistent scratch and subtracts it in
        place, so no ``(n, N)`` temporary is materialized and each block
        of replicas streams through cache exactly once.  Blocks are
        independent (disjoint rows) and run on the configured thread
        pool.  Per element the operation sequence (multiply, then
        subtract) is unchanged, so the result is bit-identical to the
        historical whole-matrix expression.  Fallback: per-worker flat
        round-trips.
        """
        if self.arena is not None:
            from repro.utils import parallel

            # Learning rates in the arena dtype: float32 runs update
            # without a float64 upcast temporary (no-op at float64).
            rates = np.array(
                [w.optimizer.lr for w in self.workers], dtype=self.arena.dtype
            )
            data = self.arena.data

            def update_block(bound) -> None:
                start, stop = bound
                # The (block, N) product is the only temporary — bounded
                # by the block budget instead of the full (n, N) matrix.
                data[start:stop] -= rates[start:stop, None] * average

            with obs.phase("mix"):
                parallel.parallel_map(
                    update_block,
                    parallel.block_ranges(
                        self.num_workers, self._mix_block_rows()
                    ),
                    phase="mix.block",
                )
            for worker in self.workers:
                worker.steps_taken += 1
        else:
            with obs.phase("mix"):
                for worker in self.workers:
                    worker.apply_gradient(average)

    def consensus_model(self) -> np.ndarray:
        """The average model ``X̄ = X·1/n`` — what gets evaluated."""
        if self.arena is not None:
            return self.arena.mean_model()
        stacked = np.stack([w.get_params() for w in self.workers])
        return stacked.mean(axis=0)

    def consensus_distance(self) -> float:
        """``(1/n)Σᵢ‖xᵢ − x̄‖²`` — the quantity Theorem 1 bounds."""
        if self.arena is not None:
            return self.arena.consensus_distance()
        stacked = np.stack([w.get_params() for w in self.workers])
        mean = stacked.mean(axis=0)
        return float(np.mean(np.sum((stacked - mean) ** 2, axis=1)))

    def min_link_bandwidth(self) -> Optional[float]:
        """Slowest pairwise link — the collective-operation bottleneck."""
        if self.network is None or self.network.bandwidth is None:
            return None
        matrix = self.network.bandwidth
        off_diag = matrix[~np.eye(matrix.shape[0], dtype=bool)]
        return float(off_diag.min())
