"""PSGD (all-reduce) and TopK-PSGD baselines.

* :class:`PSGD` — synchronous parallel SGD with a bandwidth-optimal
  all-reduce: every worker ends each round with the average gradient.
  Worker traffic is ``2N`` values per round (Table I).
* :class:`TopKPSGD` — each worker sparsifies its gradient to the top
  ``N/c`` magnitudes with error feedback, then allgathers the sparse
  gradients; worker traffic is ``≈2n·(N/c)`` values per round (Table I:
  the allgather is what keeps TopK linear in ``n``).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.algorithms.base import DistributedAlgorithm
from repro.compression.base import BYTES_PER_VALUE
from repro.compression.error_feedback import BatchedErrorFeedback, ErrorFeedback
from repro.compression.topk import TopKCompressor


class PSGD(DistributedAlgorithm):
    """All-reduce parallel SGD (Eq. 1): the accuracy upper bound."""

    name = "PSGD"

    def run_round(self, round_index: int) -> float:
        if self.arena is not None:
            # Gradients land in the arena's grad matrix (in one batched
            # forward/backward when the ClusterTrainer is attached); the
            # all-reduce is one column-mean and the update one
            # broadcasted row operation — no per-worker concat/split.
            losses = self._local_gradients_into_arena()
            average = self.arena.grads.mean(axis=0)
        else:
            losses = []
            gradients = []
            with obs.phase("compute"):
                for worker in self.workers:
                    loss, gradient = worker.compute_gradient()
                    losses.append(loss)
                    gradients.append(gradient)
            average = np.mean(gradients, axis=0)
        self._apply_average_gradient(average)

        # Ring all-reduce accounting: each worker exchanges ~2N values per
        # round regardless of n (sends N to its successor, receives N from
        # its predecessor — Table I's 2NT worker cost).
        with obs.phase("comm"):
            n = self.num_workers
            model_bytes = self.model_size * BYTES_PER_VALUE
            for i in range(n):
                self.network.meter.record(
                    round_index, i, (i + 1) % n, model_bytes
                )
            bottleneck = self.min_link_bandwidth()
            if bottleneck is not None:
                # The collective moves 2N per worker gated by the
                # slowest link.
                self.network.timer.add_transfer(2 * model_bytes, bottleneck)
        self.network.finish_round()
        return float(np.mean(losses))


class TopKPSGD(DistributedAlgorithm):
    """Top-k sparsified PSGD with error feedback and sparse allgather."""

    name = "TopK-PSGD"

    def __init__(self, compression_ratio: float = 1000.0) -> None:
        super().__init__()
        self.compressor = TopKCompressor(compression_ratio)
        self._feedback: list = []
        self._batch_feedback = None

    def _after_setup(self) -> None:
        if self.arena is not None:
            # Arena fast path: one (n, N) residual matrix; compression
            # runs over the whole gradient matrix per round.  Top-k is
            # deterministic, so this is element-for-element identical to
            # n independent per-worker buffers.
            self._batch_feedback = BatchedErrorFeedback(
                self.compressor,
                self.num_workers,
                self.model_size,
                dtype=self.arena.dtype,
            )
            self._feedback = []
        else:
            self._batch_feedback = None
            self._feedback = [
                ErrorFeedback(
                    self.compressor, self.model_size, dtype=worker.model.dtype
                )
                for worker in self.workers
            ]

    def run_round(self, round_index: int) -> float:
        if self.arena is not None:
            # Gradients accumulate into the arena's grad matrix (batched
            # when the ClusterTrainer is attached); compensation + top-k
            # + residual update are then three matrix operations via
            # compress_matrix.
            losses = self._local_gradients_into_arena()
            batch, dense_sent = self._batch_feedback.compress(
                self.arena.grads, round_index
            )
            payload_bytes = batch.row_bytes()
            average = dense_sent.mean(axis=0)
        else:
            losses = []
            dense_contributions = []
            payload_bytes = []
            with obs.phase("compute"):
                for worker, feedback in zip(self.workers, self._feedback):
                    loss, gradient = worker.compute_gradient()
                    losses.append(loss)
                    payload, dense_sent = feedback.compress(
                        gradient, round_index
                    )
                    dense_contributions.append(dense_sent)
                    payload_bytes.append(payload.num_bytes())
            average = np.mean(dense_contributions, axis=0)
        self._apply_average_gradient(average)

        # Allgather: every worker ships its sparse gradient to the other
        # n-1 workers (and receives n-1 sparse gradients).
        with obs.phase("comm"):
            n = self.num_workers
            for i in range(n):
                for j in range(n):
                    if i != j:
                        self.network.meter.record(
                            round_index, i, j, payload_bytes[i]
                        )
            bottleneck = self.min_link_bandwidth()
            if bottleneck is not None:
                # A worker's NIC serializes its n-1 uploads.
                worst = max(payload_bytes)
                self.network.timer.add_transfer((n - 1) * worst, bottleneck)
        self.network.finish_round()
        return float(np.mean(losses))
