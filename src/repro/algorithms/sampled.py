"""Million-client sampled-participation AsyncFedAvg.

The worker-backed algorithm stack materializes a :class:`TrainingWorker`
(model, optimizer, dataset partition) per enrolled client — O(n) memory
and O(n) setup, which caps runs at a few thousand clients.  Production
federated populations are 10⁵–10⁷ enrolled clients of which a few
hundred participate per round; everything per-client must be lazy.

This module is that execution mode, composed from the PR's pieces:

* state lives in a :class:`~repro.nn.sharded.ShardedArena` — resident
  rows ∝ concurrently active clients, dormant clients cost nothing;
* per-client *data* is virtual too: :class:`LogisticBlobsTask` draws
  each client's batches from a :func:`~repro.utils.rng.derive_seed`
  substream on demand, so no partition list is ever materialized;
* availability comes from a lazy
  :class:`~repro.sim.population.ClientPopulation` arrival process;
* the event schedule runs on the calendar-queue engine; per-upload the
  server applies the same FedAsync staleness-weighted mixing rule as
  :class:`~repro.algorithms.asynchronous.AsyncFedAvg`.

:class:`SampledAsyncFedAvg` speaks the engine protocol (``bind`` /
``start`` / ``mean_train_loss`` / ``consensus_distance``) plus the
``evaluate_consensus_model`` hook, so :meth:`EventEngine.run` drives and
checkpoints it like any worker-backed variant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compression.base import BYTES_PER_VALUE
from repro.compression.random_mask import generate_mask
from repro.core.matching import greedy_weighted_matching
from repro.network.metrics import TrafficMeter
from repro.nn.sharded import ShardedArena
from repro.utils.dtypes import DTypeLike, resolve_dtype
from repro.utils.rng import derive_seed


class LogisticBlobsTask:
    """Softmax regression on per-client Gaussian blobs, fully lazy.

    A shared set of class centers defines the problem; client ``c``'s
    step ``s`` batch is regenerated on demand from
    ``derive_seed(seed, "client", c, s)`` — identical every time it is
    asked for, never stored.  The model is the flat ``(C·D + C)`` vector
    ``[W.ravel(), b]`` and local training is plain softmax-cross-entropy
    SGD, vectorized over the batch.
    """

    def __init__(
        self,
        num_features: int = 32,
        num_classes: int = 10,
        batch_size: int = 16,
        noise: float = 0.6,
        validation_samples: int = 2048,
        seed: int = 0,
    ) -> None:
        if num_features < 1 or num_classes < 2:
            raise ValueError(
                f"need num_features >= 1 and num_classes >= 2, got "
                f"{num_features}, {num_classes}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if noise <= 0:
            raise ValueError(f"noise must be > 0, got {noise}")
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.batch_size = int(batch_size)
        self.noise = float(noise)
        self.seed = int(seed)
        self.model_size = self.num_classes * self.num_features + self.num_classes
        rng = np.random.default_rng(derive_seed(self.seed, "task-centers"))
        # Unit-norm class centers: separation is controlled by `noise`.
        centers = rng.normal(size=(self.num_classes, self.num_features))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        self.centers = centers
        val_rng = np.random.default_rng(derive_seed(self.seed, "task-validation"))
        self.val_labels = val_rng.integers(
            self.num_classes, size=int(validation_samples)
        )
        self.val_features = self.centers[self.val_labels] + self.noise * (
            val_rng.normal(size=(int(validation_samples), self.num_features))
        )

    # ------------------------------------------------------------------
    # lazy per-client data
    # ------------------------------------------------------------------
    def client_batch(self, client: int, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """Client ``client``'s ``step``-th batch (deterministic, lazy)."""
        rng = np.random.default_rng(
            derive_seed(self.seed, "client", client, step)
        )
        labels = rng.integers(self.num_classes, size=self.batch_size)
        features = self.centers[labels] + self.noise * rng.normal(
            size=(self.batch_size, self.num_features)
        )
        return features, labels

    # ------------------------------------------------------------------
    # flat-vector model ops
    # ------------------------------------------------------------------
    def _unpack(self, vector: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        split = self.num_classes * self.num_features
        weights = vector[:split].reshape(self.num_classes, self.num_features)
        bias = vector[split:]
        return weights, bias

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def run_local(
        self, row: np.ndarray, client: int, cycle: int, steps: int, lr: float
    ) -> float:
        """``steps`` SGD steps in place on ``row``; returns mean loss."""
        weights, bias = self._unpack(row)
        batch_rows = np.arange(self.batch_size)
        losses = []
        for local in range(steps):
            features, labels = self.client_batch(client, cycle * steps + local)
            probs = self._softmax(features @ weights.T + bias)
            losses.append(
                -float(np.mean(np.log(probs[batch_rows, labels] + 1e-12)))
            )
            grad_logits = probs
            grad_logits[batch_rows, labels] -= 1.0
            grad_logits /= self.batch_size
            weights -= lr * (grad_logits.T @ features)
            bias -= lr * grad_logits.sum(axis=0)
        return float(np.mean(losses))

    def evaluate(self, vector: np.ndarray) -> Tuple[float, float]:
        """(validation loss, accuracy) of a flat model vector."""
        weights, bias = self._unpack(np.asarray(vector, dtype=np.float64))
        probs = self._softmax(self.val_features @ weights.T + bias)
        rows = np.arange(len(self.val_labels))
        loss = -float(np.mean(np.log(probs[rows, self.val_labels] + 1e-12)))
        accuracy = float(np.mean(probs.argmax(axis=1) == self.val_labels))
        return loss, accuracy


class SampledAsyncFedAvg:
    """FedAsync over an enrolled population with K in-flight participants.

    At any moment exactly ``sample_size`` clients hold a participation
    seat: download → local steps → upload → staleness-weighted server
    mix, then the seat is handed to a freshly sampled (up, idle) client.
    All per-client state rides the :class:`ShardedArena` pinned across
    the participation, so resident memory is ∝ the active set for any
    enrolment.

    The server mixing rule, staleness accounting and traffic metering
    match :class:`~repro.algorithms.asynchronous.AsyncFedAvg`; the
    difference is purely the lazy substrate (no TrainingWorkers, no
    partitions, no dense arena).  Fault plans are not supported — the
    crash/recovery machinery lives in the worker-backed stack.
    """

    name = "Sampled-Async-FedAvg"
    is_asynchronous = True

    def __init__(
        self,
        task: LogisticBlobsTask,
        num_clients: int,
        sample_size: int = 512,
        capacity: Optional[int] = None,
        local_steps: int = 5,
        mixing: float = 0.6,
        staleness_power: float = 1.0,
        lr: float = 0.1,
        dtype: DTypeLike = None,
        seed: int = 0,
    ) -> None:
        num_clients = int(num_clients)
        sample_size = int(sample_size)
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if not 1 <= sample_size <= num_clients:
            raise ValueError(
                f"sample_size must be in [1, {num_clients}], got {sample_size}"
            )
        if local_steps < 1:
            raise ValueError(f"local_steps must be >= 1, got {local_steps}")
        if not 0.0 < mixing <= 1.0:
            raise ValueError(f"mixing must be in (0, 1], got {mixing}")
        if staleness_power < 0.0:
            raise ValueError(
                f"staleness_power must be >= 0, got {staleness_power}"
            )
        if capacity is None:
            # Headroom above the pinned set so pins can never dead-lock
            # and recently-active rows get a little reuse.
            capacity = min(num_clients, 2 * sample_size + 16)
        capacity = int(capacity)
        if capacity < sample_size:
            raise ValueError(
                f"capacity ({capacity}) must cover the {sample_size} "
                f"concurrently pinned participants"
            )
        self.task = task
        self.num_workers = num_clients  # engine-protocol name
        self.num_clients = num_clients
        self.sample_size = sample_size
        self.local_steps = int(local_steps)
        self.mixing = float(mixing)
        self.staleness_power = float(staleness_power)
        self.lr = float(lr)
        self.model_size = task.model_size
        self.model_bytes = task.model_size * BYTES_PER_VALUE
        dtype = resolve_dtype(dtype)
        # Server-centric semantics: participants always download fresh
        # global state, so evicted rows need no writeback store.
        self.arena = ShardedArena(
            num_clients,
            task.model_size,
            dtype=dtype,
            capacity=capacity,
            retain_evicted=False,
        )
        self.global_model = np.zeros(task.model_size, dtype=dtype)
        self.arena.set_cold(self.global_model)
        self._rng = np.random.default_rng(derive_seed(seed, "sampled-server"))
        self.engine = None
        #: Shared participation/residency layer, built at :meth:`bind`.
        self.participation_ctx = None
        self.server_version = 0
        self.upload_count = 0
        self.total_local_steps = 0
        self.staleness_log: List[int] = []
        self._loss_sum = 0.0
        self._loss_events = 0
        self._active: set = set()
        self._cycle_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # engine protocol
    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        if engine.num_workers != self.num_clients:
            raise ValueError(
                f"engine has {engine.num_workers} workers, algorithm "
                f"has {self.num_clients}"
            )
        if engine.faults_active:
            raise ValueError(
                "SampledAsyncFedAvg does not support fault plans — use the "
                "worker-backed AsyncFedAvg for crash/recovery studies"
            )
        self.engine = engine
        from repro.sim.participation import ParticipationContext

        self.participation_ctx = ParticipationContext(
            self.num_clients,
            population=getattr(engine, "population", None),
            sample_size=self.sample_size,
        )

    def start(self) -> None:
        initial = self.participation_ctx.initial_seats(
            0.0, self.sample_size, self._rng, lazy=True
        )
        for client in initial:
            self._active.add(int(client))
            self._launch(int(client), 0.0)

    @property
    def mean_train_loss(self) -> float:
        if self._loss_events == 0:
            return float("nan")
        return self._loss_sum / self._loss_events

    def consensus_model(self) -> np.ndarray:
        return self.global_model.copy()

    def consensus_distance(self) -> float:
        """Mean squared distance of *resident* rows to the global model.

        The dense definition averages over every worker; at million-scale
        only the active working set is materialized, so this reports the
        drift of the rows that exist — the honest sampled analogue.
        """
        slots = self.arena.resident_slots()
        if slots.size == 0:
            return 0.0
        diffs = self.arena.data[slots] - self.global_model
        return float(np.mean(np.sum(diffs ** 2, axis=1)))

    def evaluate_consensus_model(self, validation) -> Tuple[float, float]:
        """Engine snapshot hook: the task owns its validation split."""
        return self.task.evaluate(self.global_model)

    # ------------------------------------------------------------------
    # sampling (delegated to the shared participation layer)
    # ------------------------------------------------------------------
    def _draw_participant(self, now: float) -> Optional[int]:
        return self.participation_ctx.draw_seat(now, self._rng, self._active)

    def _fill_seat(self, now: float) -> None:
        replacement = self._draw_participant(now)
        if replacement is None:
            self.engine.schedule(now + 1.0, self._fill_seat)
            return
        self._active.add(replacement)
        self._launch(replacement, now)

    # ------------------------------------------------------------------
    # the participation state machine
    # ------------------------------------------------------------------
    def _launch(self, client: int, now: float) -> None:
        engine = self.engine
        population = engine.population
        if population is not None:
            up_at = population.next_up(client, now)
            if up_at > now:
                engine.schedule(
                    up_at, lambda t, c=client: self._launch(c, t)
                )
                return
        # The download carries the global model as of its start.
        snapshot = self.global_model.copy()
        version = self.server_version
        _, dl_end = engine.start_transfer(
            now, TrafficMeter.SERVER, client, self.model_bytes,
            self.upload_count,
        )
        engine.schedule(
            max(dl_end, now),
            lambda t, c=client, s=snapshot, v=version: (
                self._on_download(c, s, v, t)
            ),
        )

    def _on_download(
        self, client: int, snapshot: np.ndarray, version: int, now: float
    ) -> None:
        engine = self.engine
        # Pin for the whole participation: local steps and the upload
        # read/write this row, eviction in between would tear it.
        self.arena.acquire([client])
        self.arena.row(client)[...] = snapshot
        cycle = self._cycle_counts.get(client, 0)
        self._cycle_counts[client] = cycle + 1
        duration = engine.compute_seconds(cycle, client, self.local_steps)
        engine.trace.add(client, "compute", now, now + duration)
        engine.schedule(
            now + duration,
            lambda t, c=client, v=version, cy=cycle: (
                self._on_compute_done(c, v, cy, t)
            ),
        )

    def _on_compute_done(
        self, client: int, version: int, cycle: int, now: float
    ) -> None:
        loss = self.task.run_local(
            self.arena.row(client), client, cycle, self.local_steps, self.lr
        )
        self.total_local_steps += self.local_steps
        self._loss_sum += loss
        self._loss_events += 1
        _, ul_end = self.engine.start_transfer(
            now, client, TrafficMeter.SERVER, self.model_bytes,
            self.upload_count,
        )
        self.engine.schedule(
            max(ul_end, now),
            lambda t, c=client, v=version: self._on_upload(c, v, t),
        )

    def _on_upload(self, client: int, version: int, now: float) -> None:
        staleness = self.server_version - version
        self.staleness_log.append(staleness)
        alpha = self.mixing / float((1 + staleness) ** self.staleness_power)
        upload = self.arena.row(client)
        mixed = (1.0 - alpha) * self.global_model + alpha * upload
        self.global_model = mixed.astype(self.global_model.dtype, copy=False)
        self.server_version += 1
        self.upload_count += 1
        self.arena.release([client])
        self._active.discard(client)
        self._fill_seat(now)


class SampledSAPS:
    """Sampled-neighborhood SAPS-PSGD over a huge enrolled population.

    The worker-backed :class:`~repro.algorithms.saps_psgd.SAPSPSGD` plans
    its max-weight matching over the full ``(n, n)`` bandwidth matrix and
    keeps every replica dense — both O(n) or O(n²) in the enrolment.
    Here each round draws ``sample_size`` up clients through the shared
    :class:`~repro.sim.participation.ParticipationContext`, builds the
    bandwidth submatrix for just that neighborhood (pairwise rate =
    bottleneck link, ``min`` of the two endpoints' lazily seeded uplink
    capabilities), matches *within* the sample, and runs the paper's
    shared-mask Eq. (7) exchange on :class:`ShardedArena` rows pinned for
    the round.  Evicted rows write back (``retain_evicted=True``): gossip
    is peer-to-peer, a client's model *is* its state between
    participations, unlike the download-fresh server-centric
    :class:`SampledAsyncFedAvg`.

    Resident memory is ∝ ``capacity``, never enrolment; the consensus
    diagnostics stream over resident rows + writeback store + lazy cold
    mass (:func:`~repro.theory.streaming.arena_consensus`), so nothing
    ever materializes ``(n, N)``.
    """

    name = "Sampled-SAPS"

    def __init__(
        self,
        task: LogisticBlobsTask,
        num_clients: int,
        sample_size: int = 512,
        capacity: Optional[int] = None,
        compression_ratio: float = 100.0,
        local_steps: int = 1,
        lr: float = 0.1,
        round_duration: float = 1.0,
        population=None,
        dtype: DTypeLike = None,
        seed: int = 0,
    ) -> None:
        num_clients = int(num_clients)
        sample_size = int(sample_size)
        if num_clients < 2:
            raise ValueError(f"num_clients must be >= 2, got {num_clients}")
        if not 1 <= sample_size <= num_clients:
            raise ValueError(
                f"sample_size must be in [1, {num_clients}], got {sample_size}"
            )
        if compression_ratio < 1.0:
            raise ValueError(
                f"compression_ratio must be >= 1, got {compression_ratio}"
            )
        if local_steps < 1:
            raise ValueError(f"local_steps must be >= 1, got {local_steps}")
        if capacity is None:
            # Room for the pinned participant set plus reuse headroom.
            capacity = min(num_clients, 2 * sample_size + 16)
        capacity = int(capacity)
        if capacity < sample_size:
            raise ValueError(
                f"capacity ({capacity}) must cover the {sample_size} "
                f"concurrently pinned participants"
            )
        self.task = task
        self.num_clients = num_clients
        self.num_workers = num_clients
        self.sample_size = sample_size
        self.compression_ratio = float(compression_ratio)
        self.local_steps = int(local_steps)
        self.lr = float(lr)
        self.round_duration = float(round_duration)
        self.population = population
        self.seed = int(seed)
        self.model_size = task.model_size
        self.model_bytes = task.model_size * BYTES_PER_VALUE
        # Peer-to-peer semantics: an evicted participant's row must
        # survive to its next participation, so writeback is mandatory.
        self.arena = ShardedArena(
            num_clients,
            task.model_size,
            dtype=resolve_dtype(dtype),
            capacity=capacity,
            retain_evicted=True,
        )
        # Dedicated substreams, mirroring SAPSPSGD: participation draws
        # never perturb matching tie-breaks or mask seeds.
        self._participation_rng = np.random.default_rng(
            derive_seed(self.seed, "participation")
        )
        self._matching_rng = np.random.default_rng(
            derive_seed(self.seed, "matching")
        )
        self._bandwidth: Dict[int, float] = {}
        self.last_participants: Optional[List[int]] = None
        self.rounds_run = 0
        self.exchange_count = 0
        self.exchanged_bytes = 0
        self.total_local_steps = 0
        self._cycle_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # participation / bandwidth (both lazy)
    # ------------------------------------------------------------------
    def participation_context(self):
        # Imported here: repro.algorithms must not import the repro.sim
        # package at module load (sim.comparison imports the algorithms).
        from repro.sim.participation import ParticipationContext

        return ParticipationContext(
            self.num_clients,
            population=self.population,
            sample_size=self.sample_size,
            round_duration=self.round_duration,
        )

    def client_bandwidth(self, client: int) -> float:
        """Client ``client``'s uplink capability, derived on first use.

        Uniform on [1, 100) Mbps from a per-client seed substream — the
        million-client analogue of the dense runs' random bandwidth
        matrix, without ever materializing ``(n, n)``.
        """
        cached = self._bandwidth.get(client)
        if cached is None:
            rng = np.random.default_rng(
                derive_seed(self.seed, "bandwidth", client)
            )
            cached = float(rng.uniform(1.0, 100.0))
            self._bandwidth[client] = cached
        return cached

    def _neighborhood_weights(self, participants: List[int]) -> np.ndarray:
        """Pairwise bandwidth submatrix for the sampled neighborhood.

        Edge rate is the bottleneck link: ``min`` of the endpoints'
        capabilities — O(K) seed derivations and an O(K²) broadcast, for
        K = participants, independent of enrolment.
        """
        caps = np.array(
            [self.client_bandwidth(c) for c in participants], dtype=np.float64
        )
        weights = np.minimum(caps[:, None], caps[None, :])
        np.fill_diagonal(weights, 0.0)
        return weights

    # ------------------------------------------------------------------
    # the round
    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> float:
        ctx = self.participation_context()
        participants = ctx.select_round(round_index, self._participation_rng)
        self.last_participants = list(participants)
        if not participants:
            self.rounds_run += 1
            return float("nan")

        # Max-weight matching restricted to the sampled (up) neighborhood;
        # local indices map back through `participants`.
        matching = []
        if len(participants) >= 2:
            local_pairs = greedy_weighted_matching(
                self._neighborhood_weights(participants),
                rng=self._matching_rng,
            )
            matching = [
                (participants[i], participants[j]) for i, j in local_pairs
            ]

        mask = generate_mask(
            self.model_size,
            self.compression_ratio,
            derive_seed(self.seed, "mask", round_index),
        )
        indices = np.flatnonzero(mask)

        # Pin the whole participant set for the round: local SGD and the
        # pairwise merge hold live row views, eviction would tear them.
        losses = []
        with ctx.resident(self.arena, participants):
            for client in participants:
                cycle = self._cycle_counts.get(client, 0)
                self._cycle_counts[client] = cycle + 1
                losses.append(
                    self.task.run_local(
                        self.arena.row(client),
                        client,
                        cycle,
                        self.local_steps,
                        self.lr,
                    )
                )
            self.total_local_steps += len(participants) * self.local_steps
            for a, b in matching:
                row_a = ctx.client_row(self.arena, a)
                row_b = ctx.client_row(self.arena, b)
                averaged = 0.5 * (row_a[indices] + row_b[indices])
                row_a[indices] = averaged
                row_b[indices] = averaged
            self.exchange_count += len(matching)
            self.exchanged_bytes += (
                2 * len(matching) * indices.size * BYTES_PER_VALUE
            )
        self.rounds_run += 1
        return float(np.mean(losses))

    # ------------------------------------------------------------------
    # streamed diagnostics (never materialize (n, N))
    # ------------------------------------------------------------------
    def _streamed(self) -> Tuple[np.ndarray, float]:
        # Imported here: repro.theory pulls in repro.sim.engine at module
        # load, which circles back into repro.algorithms.
        from repro.theory.streaming import arena_consensus

        return arena_consensus(self.arena)

    def consensus_model(self) -> np.ndarray:
        return self._streamed()[0]

    def consensus_distance(self) -> float:
        return self._streamed()[1]

    def evaluate(self) -> Tuple[float, float]:
        """(validation loss, accuracy) of the streamed consensus model."""
        return self.task.evaluate(self._streamed()[0])
