"""Asynchronous algorithm variants for the event engine.

Three asynchronous counterparts of the compared families, all driven by
:class:`repro.sim.events.EventEngine` (no synchronous round barrier) and
all reusing the arena / batched-kernel numeric substrate:

* :class:`AsyncGossip` — SAPS-style pairwise masked gossip where a pair
  exchanges **as soon as both endpoints are free**: a worker finishing
  its local steps pairs with a waiting peer (bandwidth-greedy or random)
  or waits for the next arrival.  No straggler ever gates the cluster.
* :class:`AsyncDPSGD` — AD-PSGD-style asynchronous decentralized SGD
  (Lian et al., 2018): gradient computation overlaps pairwise model
  averaging, and each applied gradient's **staleness** (averagings that
  touched the worker's model between gradient computation and
  application) is tracked.
* :class:`AsyncFedAvg` — FedAsync-style server (Xie et al., 2019):
  workers download/compute/upload on their own clocks and the server
  mixes each upload with a **staleness-attenuated** weight
  ``alpha / (1 + staleness) ** staleness_power``.

The variants subclass :class:`DistributedAlgorithm` so ``setup`` gives
them the shared arena, the batched :class:`ClusterTrainer` and the
initial broadcast for free; instead of ``run_round`` they expose
``start()`` plus event handlers the engine fires.  Churn and loss models
are read off the engine (one scenario timeline for everything): an
offline worker sleeps a cycle and retries, a lost exchange leaves both
peers unmixed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import DistributedAlgorithm
from repro.compression.base import BYTES_PER_VALUE
from repro.compression.random_mask import generate_mask
from repro.network.metrics import TrafficMeter
from repro.utils.rng import derive_seed


class AsyncAlgorithm(DistributedAlgorithm):
    """Shared per-worker cycle machinery of the asynchronous variants.

    A worker's life is a loop of *cycles*; what a cycle does is
    subclass-specific (:meth:`_start_cycle`).  The base class handles
    binding to the engine, churn gating (an offline worker idles one
    compute interval and retries), local-step execution through the
    batched trainer when available, and running train-loss accounting.
    """

    is_asynchronous = True

    def __init__(self, local_steps: int = 1) -> None:
        super().__init__()
        if local_steps < 1:
            raise ValueError(f"local_steps must be >= 1, got {local_steps}")
        self.local_steps = int(local_steps)
        self.engine = None
        #: Shared participation/residency layer, built at :meth:`bind`
        #: from the engine's population model.
        self.participation_ctx = None
        self.total_local_steps = 0
        #: Per-application staleness samples (variant-specific meaning;
        #: empty for variants without a staleness notion).
        self.staleness_log: List[int] = []
        self._cycle_counts: Optional[np.ndarray] = None
        self._loss_sum = 0.0
        self._loss_events = 0

    # ------------------------------------------------------------------
    # engine protocol
    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        if engine.num_workers != self.num_workers:
            raise ValueError(
                f"engine has {engine.num_workers} workers, algorithm "
                f"has {self.num_workers}"
            )
        self.engine = engine
        # Imported here: repro.algorithms must not import the repro.sim
        # package at module load (sim.comparison imports the algorithms).
        from repro.sim.participation import ParticipationContext

        self.participation_ctx = ParticipationContext(
            self.num_workers,
            population=getattr(engine, "population", None),
        )

    def start(self) -> None:
        """Schedule every worker's first cycle at t = 0."""
        self._cycle_counts = np.zeros(self.num_workers, dtype=np.int64)
        #: The broadcast starting point — what a cold recovery restores.
        self.initial_model = self.workers[0].snapshot_params()
        for rank in range(self.num_workers):
            self._begin_cycle(rank, 0.0)

    # ------------------------------------------------------------------
    # fault protocol (engine callbacks; no-ops without an active plan)
    # ------------------------------------------------------------------
    def restart_worker(self, rank: int, now: float) -> None:
        """Recovery hook: the worker's state is restored, start it over."""
        self._begin_cycle(rank, now)

    def on_worker_crashed(self, rank: int, now: float) -> None:
        """Crash hook: drop variant-specific bookkeeping of the worker."""

    def _schedule_worker(self, rank: int, time: float, action) -> None:
        """Schedule an event on behalf of ``rank``.

        Fault-free this is :meth:`EventEngine.schedule` verbatim.  With
        faults active the action captures the worker's incarnation and
        drops itself if the worker crashed (and possibly restarted) in
        the meantime — a dead incarnation's compute-done or wake-up
        events must never touch the restored state.
        """
        engine = self.engine
        if not engine.faults_active:
            engine.schedule(time, action)
            return
        inc = engine.node_incarnation(rank)

        def guarded(t: float) -> None:
            if engine.worker_up[rank] and engine.incarnation[rank] == inc:
                action(t)

        engine.schedule(time, guarded)

    def _drive_exchange(
        self,
        driver: int,
        partner: int,
        num_bytes: int,
        index: int,
        on_success,
        on_give_up,
        attempt: int = 0,
        now: Optional[float] = None,
        takeover: bool = True,
        bidirectional: bool = True,
        loss_key: Optional[tuple] = None,
        driver_inc: Optional[int] = None,
        partner_inc: Optional[int] = None,
    ) -> None:
        """One fault-aware exchange attempt, driven from ``driver``'s side.

        Only called with faults active.  The attempt either:

        * expires at ``policy.timeout`` when the partner is dead,
          restarted, or the link is down ("waiting on a dead peer");
        * is dropped by the loss model (the transfer time is paid, the
          payload is not delivered);
        * starts a tracked transfer that a mid-flight crash aborts; or
        * completes, firing ``on_success(t)``.

        Every failure path funnels into the same retry logic: exponential
        backoff with seed-deterministic jitter, then a fresh attempt;
        after ``max_retries`` the driver abandons the exchange and
        ``on_give_up(t, survivor)`` fires (the re-match path).  If the
        *driver* crashes mid-flight and ``takeover`` is set, the
        surviving partner inherits the retry loop — a crash always
        leaves the survivor in charge of its own deadline.
        """
        engine = self.engine
        policy = engine.exchange_policy
        stats = engine.resilience
        if now is None:
            now = engine.now
        if driver_inc is None:
            driver_inc = engine.node_incarnation(driver)
        if partner_inc is None:
            partner_inc = engine.node_incarnation(partner)

        def driver_ok() -> bool:
            return (
                engine.node_up(driver)
                and engine.node_incarnation(driver) == driver_inc
            )

        def partner_ok() -> bool:
            return (
                engine.node_up(partner)
                and engine.node_incarnation(partner) == partner_inc
            )

        def retry(t: float) -> None:
            self._drive_exchange(
                driver, partner, num_bytes, index, on_success, on_give_up,
                attempt + 1, t, takeover=takeover,
                bidirectional=bidirectional, loss_key=loss_key,
                driver_inc=driver_inc, partner_inc=partner_inc,
            )

        def fail(t: float) -> None:
            if not driver_ok():
                if takeover and partner_ok():
                    # The driver died mid-exchange: the survivor takes
                    # over the retry loop from its own side.
                    self._drive_exchange(
                        partner, driver, num_bytes, index, on_success,
                        on_give_up, attempt + 1, t, takeover=takeover,
                        bidirectional=bidirectional, loss_key=loss_key,
                        driver_inc=partner_inc, partner_inc=driver_inc,
                    )
                return
            if attempt >= policy.max_retries:
                stats.give_ups += 1
                on_give_up(t, driver)
                return
            stats.retries += 1
            delay = policy.backoff_delay(driver, attempt, index)
            engine.schedule(t + delay, retry)

        stats.attempted_exchanges += 1
        if not (partner_ok() and engine.exchange_viable(driver, partner)):
            # Waiting on a dead, restarted or unreachable peer: the
            # attempt expires at its deadline, then backs off.
            stats.timeout_exchanges += 1
            engine.schedule(now + policy.timeout, fail)
            return
        loss = engine.loss_model
        if loss is not None:
            key = loss_key if loss_key is not None else (driver, partner)
            if loss.exchange_fails(index, *key):
                # Lost in transit: the transfer time is paid, the payload
                # never arrives, and the deadline machinery retries.
                stats.lost_exchanges += 1
                duration = engine.transfer_seconds(driver, partner, num_bytes)
                if bidirectional:
                    duration = max(
                        duration,
                        engine.transfer_seconds(partner, driver, num_bytes),
                    )
                engine.schedule(now + duration, fail)
                return
        if bidirectional:
            engine.start_tracked_exchange(
                now, driver, partner, num_bytes, index, on_success, fail
            )
        else:
            engine.start_tracked_transfer(
                now, driver, partner, num_bytes, index, on_success, fail
            )

    def run_round(self, round_index: int) -> float:
        raise NotImplementedError(
            "asynchronous variants run on the EventEngine, not in rounds"
        )

    @property
    def mean_train_loss(self) -> float:
        """Running mean of all local-step losses so far."""
        if self._loss_events == 0:
            return float("nan")
        return self._loss_sum / self._loss_events

    # ------------------------------------------------------------------
    # the worker cycle
    # ------------------------------------------------------------------
    def _begin_cycle(self, rank: int, start: float) -> None:
        engine = self.engine
        if engine.faults_active and not engine.worker_up[rank]:
            return  # a dead worker's cycle restarts through recovery
        ctx = self.participation_ctx
        if ctx is not None and ctx.population is not None:
            # Arrival-process availability: a down worker sleeps until
            # its own next up-*time* (one wake-up event), instead of the
            # churn model's per-cycle poll-and-retry.
            up_at = ctx.wake_at(rank, start)
            if up_at > start:
                self._schedule_worker(
                    rank, up_at, lambda t, r=rank: self._begin_cycle(r, t)
                )
                return
        cycle = int(self._cycle_counts[rank])
        self._cycle_counts[rank] += 1
        if engine.churn is not None:
            active = engine.churn.active_at(cycle)
            if not active[rank]:
                # Offline this cycle: sleep roughly one compute interval
                # and try the next cycle (a device rejoining later).
                pause = engine.compute_seconds(cycle, rank, self.local_steps)
                if pause <= 0.0:
                    pause = 1.0
                self._schedule_worker(
                    rank, start + pause, lambda t, r=rank: self._begin_cycle(r, t)
                )
                return
        self._start_cycle(rank, cycle, start)

    def _start_cycle(self, rank: int, cycle: int, start: float) -> None:
        """Default cycle: compute ``local_steps`` then hand over to
        :meth:`_on_compute_done` (gossip-style variants)."""
        engine = self.engine
        duration = engine.compute_seconds(cycle, rank, self.local_steps)
        engine.trace.add(rank, "compute", start, start + duration)
        engine.worker_free[rank] = start + duration
        self._schedule_worker(
            rank, start + duration, lambda t, r=rank: self._on_compute_done(r, t)
        )

    def _on_compute_done(self, rank: int, now: float) -> None:
        raise NotImplementedError

    def _run_local(self, rank: int, steps: Optional[int] = None) -> float:
        """Execute the local steps numerically (batched kernels when the
        trainer is attached — same per-worker RNG streams as the loop);
        returns the mean loss."""
        k = self.local_steps if steps is None else steps
        if self.cluster_trainer is not None:
            losses = self.cluster_trainer.batched_steps(
                k, ranks=np.array([rank], dtype=np.intp)
            )
            loss = float(np.mean(losses))
        else:
            loss = float(
                np.mean([self.workers[rank].local_step() for _ in range(k)])
            )
        self.total_local_steps += k
        self._loss_sum += loss * k
        self._loss_events += k
        return loss


class AsyncGossip(AsyncAlgorithm):
    """Asynchronous SAPS-style pairwise gossip.

    A worker that finishes its local steps enters a waiting pool; the
    first compatible arrival pairs with it and the two exchange the
    seeded-random-masked model components (Eq. 7's average, the exact
    math of the synchronous SAPS exchange) over their link.  ``peer_choice``
    selects among multiple waiting peers: ``"bandwidth"`` picks the
    fastest link to the arriving worker (the adaptive flavour),
    ``"random"`` draws uniformly.  A lost exchange (engine loss model)
    leaves both peers unmixed — they just start their next cycle.
    """

    name = "Async-SAPS"

    def __init__(
        self,
        compression_ratio: float = 100.0,
        local_steps: int = 1,
        peer_choice: str = "bandwidth",
        base_seed: int = 0,
    ) -> None:
        super().__init__(local_steps=local_steps)
        if compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1")
        if peer_choice not in ("bandwidth", "random"):
            raise ValueError(f"unknown peer_choice {peer_choice!r}")
        self.compression_ratio = float(compression_ratio)
        self.peer_choice = peer_choice
        self.base_seed = int(base_seed)
        self.exchange_count = 0
        self.dropped_exchanges = 0
        self._waiting: List[int] = []

    def start(self) -> None:
        self._waiting = []
        super().start()

    def on_worker_crashed(self, rank: int, now: float) -> None:
        # A crashed worker must not linger in the matching pool — a
        # later arrival would pair with a corpse.
        if rank in self._waiting:
            self._waiting.remove(rank)

    def _pick_partner(self, rank: int) -> int:
        if len(self._waiting) == 1:
            return self._waiting[0]
        if self.peer_choice == "random":
            return self._waiting[
                int(self._rng.integers(len(self._waiting)))
            ]
        bandwidth = self.network.bandwidth
        if bandwidth is None:
            return self._waiting[0]  # FIFO: all links equal
        best = self._waiting[0]
        for peer in self._waiting[1:]:
            if bandwidth[rank, peer] > bandwidth[rank, best]:
                best = peer
        return best

    def _on_compute_done(self, rank: int, now: float) -> None:
        self._run_local(rank)
        # Waiting peers may have gone down since they entered the pool:
        # a matched partner must be up *now*, so downed peers are pruned
        # first and re-enter the cycle loop (where they sleep until
        # their own next up-time) — the arriving worker then re-matches
        # against the remaining up pool.  Without a population model the
        # pool is returned untouched (the legacy bit-identical path).
        up, down = self.participation_ctx.prune_down(self._waiting, now)
        if down:
            self._waiting = up
            for peer in down:
                self._begin_cycle(peer, now)
        if not self._waiting:
            self._waiting.append(rank)
            return
        partner = self._pick_partner(rank)
        self._waiting.remove(partner)
        index = self.exchange_count
        self.exchange_count += 1
        engine = self.engine
        if engine.faults_active:
            self._faulty_exchange(rank, partner, index, now)
            return
        if engine.loss_model is not None and engine.loss_model.exchange_fails(
            index, rank, partner
        ):
            # Lost exchange: both keep their local models and recompute.
            self.dropped_exchanges += 1
            self._begin_cycle(rank, now)
            self._begin_cycle(partner, now)
            return
        seed = derive_seed(self.base_seed, "mask", index)
        mask = generate_mask(self.model_size, self.compression_ratio, seed)
        indices = np.flatnonzero(mask)
        payload_bytes = int(indices.size) * BYTES_PER_VALUE
        _, end_a = engine.start_transfer(now, rank, partner, payload_bytes, index)
        _, end_b = engine.start_transfer(now, partner, rank, payload_bytes, index)
        done = max(end_a, end_b, now)
        engine.schedule(
            done,
            lambda t, a=rank, b=partner, idx=indices: self._merge(a, b, idx, t),
        )

    def _faulty_exchange(
        self, rank: int, partner: int, index: int, now: float
    ) -> None:
        """The matched pair's exchange under an active fault plan: same
        masked-average math, but crash-abortable with deadline/backoff
        retries (loss drops are retried instead of silently skipped)."""
        engine = self.engine
        seed = derive_seed(self.base_seed, "mask", index)
        mask = generate_mask(self.model_size, self.compression_ratio, seed)
        indices = np.flatnonzero(mask)
        payload_bytes = int(indices.size) * BYTES_PER_VALUE
        incarnations = {
            rank: engine.node_incarnation(rank),
            partner: engine.node_incarnation(partner),
        }

        def on_success(t: float, a=rank, b=partner, idx=indices) -> None:
            self._merge(a, b, idx, t)

        def on_give_up(t: float, survivor: int) -> None:
            # Abandoned exchange: every party still alive in its matched
            # incarnation re-enters the cycle loop (the re-match path);
            # dead ones restart through recovery.
            self.dropped_exchanges += 1
            for node, inc in incarnations.items():
                if engine.node_up(node) and engine.node_incarnation(node) == inc:
                    self._begin_cycle(node, t)

        self._drive_exchange(
            rank, partner, payload_bytes, index, on_success, on_give_up
        )

    def _merge(self, a: int, b: int, indices: np.ndarray, now: float) -> None:
        """Eq. 7 on the masked components of the pair — same math as the
        synchronous SAPS fallback path."""
        if self.arena is not None:
            # Pin both endpoints for the exchange (a no-op on a dense
            # arena): a sharded arena must not evict either row between
            # the masked read and the scatter-back.
            ctx = self.participation_ctx
            with ctx.resident(self.arena, (a, b)):
                row_a = ctx.client_row(self.arena, a)
                row_b = ctx.client_row(self.arena, b)
                averaged = 0.5 * (row_a[indices] + row_b[indices])
                row_a[indices] = averaged
                row_b[indices] = averaged
        else:
            params_a = self.workers[a].get_params()
            params_b = self.workers[b].get_params()
            averaged = 0.5 * (params_a[indices] + params_b[indices])
            params_a[indices] = averaged
            params_b[indices] = averaged
            self.workers[a].set_params(params_a)
            self.workers[b].set_params(params_b)
        self._begin_cycle(a, now)
        self._begin_cycle(b, now)


class AsyncDPSGD(AsyncAlgorithm):
    """AD-PSGD-style asynchronous decentralized SGD with staleness.

    Each worker loops: compute one mini-batch gradient, pick a uniform
    random peer, atomically average the two models (the communication
    thread — it does **not** wait for the peer's compute), then apply the
    held gradient to its own averaged model.  The gradient was taken at
    parameters that other pairs may have averaged over in the meantime;
    the number of such foreign mixings is recorded in
    :attr:`staleness_log` per applied gradient.
    """

    name = "Async-D-PSGD"

    def __init__(self, local_steps: int = 1) -> None:
        super().__init__(local_steps=local_steps)
        self._mix_counts: Optional[np.ndarray] = None
        self.exchange_count = 0

    def start(self) -> None:
        self._mix_counts = np.zeros(self.num_workers, dtype=np.int64)
        super().start()

    def _on_compute_done(self, rank: int, now: float) -> None:
        if self.cluster_trainer is not None:
            losses = self.cluster_trainer.compute_gradients(
                ranks=np.array([rank], dtype=np.intp)
            )
            loss = float(losses[0])
            gradient = self.arena.grads[rank].copy()
        else:
            loss, gradient = self.workers[rank].compute_gradient()
            gradient = np.asarray(gradient).copy()
        self.total_local_steps += 1
        self._loss_sum += loss
        self._loss_events += 1
        base_mixes = int(self._mix_counts[rank])
        engine = self.engine

        if engine.faults_active:
            self._faulty_average(rank, gradient, base_mixes, now)
            return
        # Uniform peer restricted to the up population (the classic
        # shifted-uniform draw, bit-identical, when no population model
        # is attached).  No up peer at all: apply the gradient unmixed —
        # AD-PSGD's averaging needs no peer cooperation.
        peer = self.participation_ctx.pick_peer(rank, self._rng, now)
        if peer is None:
            self._apply(rank, gradient, base_mixes, now)
            return
        index = self.exchange_count
        self.exchange_count += 1
        if engine.loss_model is not None and engine.loss_model.exchange_fails(
            index, rank, peer
        ):
            # Lost exchange: skip the averaging, apply the gradient now.
            self._apply(rank, gradient, base_mixes, now)
            return
        model_bytes = self.model_size * BYTES_PER_VALUE
        _, end_a = engine.start_transfer(now, rank, peer, model_bytes, index)
        _, end_b = engine.start_transfer(now, peer, rank, model_bytes, index)
        done = max(end_a, end_b, now)
        engine.schedule(
            done,
            lambda t, r=rank, p=peer, g=gradient, b=base_mixes: (
                self._average_then_apply(r, p, g, b, t)
            ),
        )

    def _faulty_average(
        self, rank: int, gradient: np.ndarray, base_mixes: int, now: float
    ) -> None:
        """Peer averaging under an active fault plan: the peer is drawn
        uniformly among *live* workers, the exchange is crash-abortable
        with deadline/backoff retries, and a worker that exhausts its
        retries applies the held gradient unmixed (AD-PSGD's averaging
        needs no peer cooperation, so nobody else is parked)."""
        engine = self.engine
        live = [
            peer
            for peer in range(self.num_workers)
            if peer != rank and engine.worker_up[peer]
        ]
        if not live:
            # Last worker standing: no averaging possible this cycle.
            self._apply(rank, gradient, base_mixes, now)
            return
        peer = live[int(self._rng.integers(len(live)))]
        index = self.exchange_count
        self.exchange_count += 1

        def on_success(t: float, r=rank, p=peer, g=gradient, b=base_mixes):
            self._average_then_apply(r, p, g, b, t)

        def on_give_up(t: float, survivor: int, r=rank, g=gradient, b=base_mixes):
            self._apply(r, g, b, t)

        self._drive_exchange(
            rank, peer, self.model_size * BYTES_PER_VALUE, index,
            on_success, on_give_up, takeover=False,
        )

    def _row(self, rank: int) -> np.ndarray:
        if self.arena is not None:
            return self.arena.data[rank]
        return self.workers[rank].get_params()

    def _average_then_apply(
        self, rank: int, peer: int, gradient: np.ndarray, base_mixes: int,
        now: float,
    ) -> None:
        # Atomic pairwise averaging: x_i, x_j <- (x_i + x_j) / 2.  The
        # peer keeps computing through it (that is AD-PSGD's overlap).
        if self.arena is not None:
            # Both endpoint rows pinned for the exchange (no-op dense).
            ctx = self.participation_ctx
            with ctx.resident(self.arena, (rank, peer)):
                row_r = ctx.client_row(self.arena, rank)
                row_p = ctx.client_row(self.arena, peer)
                mean = 0.5 * (row_r + row_p)
                row_r[...] = mean
                row_p[...] = mean
        else:
            params_a = self.workers[rank].get_params()
            params_b = self.workers[peer].get_params()
            mean = 0.5 * (params_a + params_b)
            self.workers[rank].set_params(mean)
            self.workers[peer].set_params(mean)
        self._mix_counts[rank] += 1
        self._mix_counts[peer] += 1
        self._apply(rank, gradient, base_mixes, now, own_mix=1)

    def _apply(
        self, rank: int, gradient: np.ndarray, base_mixes: int, now: float,
        own_mix: int = 0,
    ) -> None:
        """Apply the held gradient; staleness = foreign mixings of this
        worker's model since the gradient was computed."""
        staleness = int(self._mix_counts[rank]) - base_mixes - own_mix
        self.staleness_log.append(max(staleness, 0))
        lr = self.workers[rank].optimizer.lr
        if self.arena is not None:
            ctx = self.participation_ctx
            with ctx.resident(self.arena, (rank,)):
                ctx.client_row(self.arena, rank)[...] -= np.asarray(
                    lr * gradient, dtype=self.arena.dtype
                )
        else:
            worker = self.workers[rank]
            worker.set_params(worker.get_params() - lr * gradient)
        self.workers[rank].steps_taken += 1
        self._begin_cycle(rank, now)


class AsyncFedAvg(AsyncAlgorithm):
    """FedAsync-style federated averaging with a staleness-weighted server.

    Each worker loops on its own clock: download the global model
    (server's transmit link), run ``local_steps`` local SGD steps,
    upload (server's receive link); the server immediately mixes the
    upload in with weight ``mixing / (1 + staleness) ** staleness_power``
    where staleness is the number of server updates since this worker's
    download.  Under contention (the event engine's default) concurrent
    downloads/uploads serialize on the shared server link ends — exactly
    the satellite contention model.

    The engine's loss model applies to the upload leg: a failed upload
    is simply never mixed in (the worker pays the transfer time and
    starts a fresh cycle).  Loss models are queried with the pair
    ``(rank, rank)`` so per-link loss matrices stay in range — their
    diagonal doubles as the worker↔server channel rate.
    """

    name = "Async-FedAvg"

    def __init__(
        self,
        local_steps: int = 5,
        mixing: float = 0.6,
        staleness_power: float = 1.0,
        sample_size: Optional[int] = None,
    ) -> None:
        super().__init__(local_steps=local_steps)
        if not 0.0 < mixing <= 1.0:
            raise ValueError(f"mixing must be in (0, 1], got {mixing}")
        if staleness_power < 0.0:
            raise ValueError(
                f"staleness_power must be >= 0, got {staleness_power}"
            )
        if sample_size is not None and int(sample_size) < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.mixing = float(mixing)
        self.staleness_power = float(staleness_power)
        #: Sampled participation: at most this many clients hold an
        #: in-flight cycle at any moment; each completed (or dropped)
        #: upload frees the seat for a freshly sampled client.  ``None``
        #: keeps the classic mode where every worker loops forever.
        self.sample_size = None if sample_size is None else int(sample_size)
        self._active: set = set()
        self.global_model: Optional[np.ndarray] = None
        self.server_version = 0
        self.upload_count = 0
        #: Uploads discarded by the engine's loss model.
        self.dropped_uploads = 0

    def _after_setup(self) -> None:
        self.global_model = self.workers[0].snapshot_params()
        self.server_version = 0
        if self.network.server_bandwidth is None and self.network.bandwidth is not None:
            # The paper's Fig. 6 convention: the server gets the best link.
            self.network.server_bandwidth = float(self.network.bandwidth.max())

    # ------------------------------------------------------------------
    # sampled participation: a K-seat pool over the enrolled population
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.sample_size is None:
            super().start()
            return
        self._cycle_counts = np.zeros(self.num_workers, dtype=np.int64)
        self.initial_model = self.workers[0].snapshot_params()
        self._active = set()
        count = min(self.sample_size, self.num_workers)
        initial = self.participation_ctx.initial_seats(0.0, count, self._rng)
        for rank in initial:
            self._active.add(int(rank))
            self._begin_cycle(int(rank), 0.0)

    def _draw_participant(self, now: float) -> Optional[int]:
        """One fresh (up, idle) client, or ``None`` when none is found."""
        return self.participation_ctx.draw_seat(now, self._rng, self._active)

    def _fill_seat(self, now: float) -> None:
        """Hand a freed participation seat to a freshly sampled client."""
        replacement = self._draw_participant(now)
        if replacement is None:
            # Nobody up and idle right now — poll again shortly rather
            # than leaking the seat for the rest of the run.
            self.engine.schedule(now + 1.0, self._fill_seat)
            return
        self._active.add(replacement)
        self._begin_cycle(replacement, now)

    def _cycle_finished(self, rank: int, now: float) -> None:
        """Cycle end: loop forever (classic) or resample (sampled)."""
        if self.sample_size is None:
            self._begin_cycle(rank, now)
            return
        self._active.discard(rank)
        self._fill_seat(now)

    def on_worker_crashed(self, rank: int, now: float) -> None:
        if self.sample_size is not None and rank in self._active:
            # The crashed client's seat is refilled immediately; its
            # recovery hands the worker back to the dormant pool.
            self._active.discard(rank)
            self._fill_seat(now)

    def restart_worker(self, rank: int, now: float) -> None:
        if self.sample_size is None:
            super().restart_worker(rank, now)
        # Sampled mode: the restored worker rejoins the dormant pool and
        # waits to be sampled again (its seat was refilled at crash time).

    def _start_cycle(self, rank: int, cycle: int, start: float) -> None:
        engine = self.engine
        model_bytes = self.model_size * BYTES_PER_VALUE
        # The download carries the global model as of its start.
        snapshot = self.global_model.copy()
        base_version = self.server_version
        # Tracked: a crash mid-download aborts the transfer and frees the
        # server's transmit end (identical to the classic transfer +
        # scheduled completion when no fault plan is active).
        engine.start_tracked_transfer(
            start, TrafficMeter.SERVER, rank, model_bytes, self.upload_count,
            lambda t, r=rank, c=cycle, s=snapshot, v=base_version: (
                self._on_download(r, c, s, v, t)
            ),
            counted=False,
        )

    def _on_download(
        self, rank: int, cycle: int, snapshot: np.ndarray, base_version: int,
        now: float,
    ) -> None:
        if self.arena is not None:
            self.arena.data[rank] = np.asarray(snapshot, dtype=self.arena.dtype)
        else:
            self.workers[rank].set_params(snapshot)
        engine = self.engine
        duration = engine.compute_seconds(cycle, rank, self.local_steps)
        engine.trace.add(rank, "compute", now, now + duration)
        engine.worker_free[rank] = now + duration
        self._schedule_worker(
            rank,
            now + duration,
            lambda t, r=rank, v=base_version: self._on_local_done(r, v, t),
        )

    def _on_local_done(self, rank: int, base_version: int, now: float) -> None:
        self._run_local(rank)
        engine = self.engine
        model_bytes = self.model_size * BYTES_PER_VALUE
        index = self.upload_count
        self.upload_count += 1
        if engine.faults_active:
            # Upload under faults: deadline + backoff retries on loss or
            # mid-flight crash; exhausting the budget abandons the upload
            # (the server never sees it) and starts a fresh cycle.
            def on_success(t: float, r=rank, v=base_version):
                self._on_upload(r, v, t)

            def on_give_up(t: float, survivor: int, r=rank):
                self.dropped_uploads += 1
                self._cycle_finished(r, t)

            self._drive_exchange(
                rank, TrafficMeter.SERVER, model_bytes, index,
                on_success, on_give_up, takeover=False,
                bidirectional=False, loss_key=(rank, rank),
            )
            return
        if engine.loss_model is not None and engine.loss_model.exchange_fails(
            index, rank, rank
        ):
            # The upload is lost in transit: the worker still pays the
            # transfer time, but the server never sees the model.
            self.dropped_uploads += 1
            _, ul_end = engine.start_transfer(
                now, rank, TrafficMeter.SERVER, model_bytes, index
            )
            engine.schedule(
                max(ul_end, now), lambda t, r=rank: self._cycle_finished(r, t)
            )
            return
        _, ul_end = engine.start_transfer(
            now, rank, TrafficMeter.SERVER, model_bytes, index
        )
        engine.schedule(
            max(ul_end, now),
            lambda t, r=rank, v=base_version: self._on_upload(r, v, t),
        )

    def _on_upload(self, rank: int, base_version: int, now: float) -> None:
        staleness = self.server_version - base_version
        self.staleness_log.append(staleness)
        alpha = self.mixing / float((1 + staleness) ** self.staleness_power)
        upload = self._upload_vector(rank)
        mixed = (1.0 - alpha) * self.global_model + alpha * upload
        self.global_model = mixed.astype(self.global_model.dtype, copy=False)
        self.server_version += 1
        self._cycle_finished(rank, now)

    def _upload_vector(self, rank: int) -> np.ndarray:
        if self.arena is not None:
            return self.arena.data[rank]
        return self.workers[rank].get_params()

    def consensus_model(self) -> np.ndarray:
        """The evaluated model is the server's global model."""
        return self.global_model.copy()
