"""SAPS-PSGD: the paper's algorithm, end to end.

Per round (Algorithms 1+2):

1. the coordinator runs adaptive peer selection and broadcasts
   ``(W_t, t, s)`` (a *small* status message — never model data);
2. every worker takes one local SGD step on its shard;
3. matched pairs exchange the seeded-random-masked model components
   (``≈N/c`` values each way, no index overhead) and average them
   (Eq. 7);
4. workers notify "ROUND END".

``selector`` picks the peer-selection policy: ``"adaptive"`` is the
paper's Algorithm 3; ``"random"`` is the Fig. 5 "RandomChoose" baseline;
``"ring"`` alternates the two perfect matchings of a fixed even cycle
(single-peer communication without adaptivity).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.algorithms.base import DistributedAlgorithm
from repro.compression.base import SharedMaskPayload
from repro.compression.random_mask import RandomMaskCompressor, generate_mask
from repro.core.gossip import FixedRingSelector, RandomPeerSelector
from repro.core.protocol import Coordinator, RoundPlan
from repro.network.metrics import utilized_bandwidth_per_round
from repro.utils.rng import derive_seed


class SAPSPSGD(DistributedAlgorithm):
    """Sparsification + Adaptive Peer Selection PSGD."""

    name = "SAPS-PSGD"

    #: Selects the fused local-step/compression pass (the gather of the
    #: round's masked columns rides the last update's arena pass).
    #: ``False`` restores update-then-regather — the equivalence oracle
    #: and bench baseline; both produce bit-identical payloads.
    fused_gather = True

    def __init__(
        self,
        compression_ratio: float = 100.0,
        bandwidth_threshold: Optional[float] = None,
        connectivity_gap: int = 20,
        selector: str = "adaptive",
        base_seed: int = 0,
        prefer_weighted: bool = False,
        churn=None,
        loss_model=None,
        local_steps: int = 1,
        sample_size: Optional[int] = None,
        population=None,
        round_duration: float = 1.0,
    ) -> None:
        super().__init__()
        if compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1")
        if selector not in ("adaptive", "random", "ring"):
            raise ValueError(f"unknown selector {selector!r}")
        if local_steps < 1:
            raise ValueError(f"local_steps must be >= 1, got {local_steps}")
        #: SGD steps per communication round.  The paper uses 1; larger
        #: values trade consensus quality for fewer exchanges (a
        #: FedAvg-style extension, ablated in bench_ablations).
        self.local_steps = int(local_steps)
        self.compression_ratio = float(compression_ratio)
        #: Round-level compressor: the arena fast path compresses the
        #: whole replica matrix through ``compress_matrix_with_seed``
        #: (one shared mask, one gather) instead of per worker.
        self.compressor = RandomMaskCompressor(self.compression_ratio)
        self.bandwidth_threshold = bandwidth_threshold
        self.connectivity_gap = connectivity_gap
        self.selector_kind = selector
        self.base_seed = int(base_seed)
        self.prefer_weighted = prefer_weighted
        #: Optional :class:`repro.sim.dynamics.ChurnModel`: offline
        #: workers skip the round entirely (no SGD, no matching) — the
        #: network-dynamics robustness of Table I's "R." column.
        self.churn = churn
        #: Optional :class:`repro.network.faults.LossModel`: a failed
        #: exchange leaves the pair unmixed that round (both keep their
        #: local models) — graceful degradation, not a crash.
        self.loss_model = loss_model
        #: Count of exchanges dropped by the loss model.
        self.dropped_exchanges = 0
        if sample_size is not None and int(sample_size) < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if round_duration <= 0:
            raise ValueError(f"round_duration must be > 0, got {round_duration}")
        #: Sampled-neighborhood participation: draw ``sample_size``
        #: clients per round (from the ``population``'s up set when one
        #: is attached), restrict matching and local steps to the draw.
        #: The draw uses its *own* seed substream, so a sample covering
        #: every worker leaves the matching/mask RNG untouched — full-
        #: coverage runs are bit-identical to full participation.
        self.sample_size = None if sample_size is None else int(sample_size)
        self.population = population
        self.round_duration = float(round_duration)
        self._participation_rng = None
        self.coordinator: Optional[Coordinator] = None
        #: Fig. 5 series: per-round utilized (bottleneck) bandwidth.
        self.round_bandwidths: List[float] = []
        #: Diagnostics: rounds where Algorithm 3 took the connectivity
        #: fallback branch.
        self.fallback_rounds: List[int] = []

    def _after_setup(self) -> None:
        n = self.num_workers
        if self.selector_kind == "adaptive":
            bandwidth = self.network.bandwidth
            if bandwidth is None:
                # No bandwidth model: all links equal, so adaptivity
                # degenerates gracefully to random matching.
                bandwidth = np.ones((n, n)) - np.eye(n)
            self.coordinator = Coordinator(
                bandwidth,
                bandwidth_threshold=self.bandwidth_threshold,
                connectivity_gap=self.connectivity_gap,
                base_seed=self.base_seed,
                rng=self._rng,
                prefer_weighted=self.prefer_weighted,
            )
            self._selector = None
        elif self.selector_kind == "random":
            self._selector = RandomPeerSelector(n, rng=self._rng)
        else:
            self._selector = FixedRingSelector(n)
        self.round_bandwidths = []
        self.fallback_rounds = []
        # Fresh setup, fresh participation substream.
        self._participation_rng = None

    def participation_context(self):
        """The shared selection/gating layer for this gossip run."""
        # Imported here: repro.algorithms must not import the repro.sim
        # package at module load (sim.comparison imports the algorithms).
        from repro.sim.participation import ParticipationContext

        return ParticipationContext(
            self.num_workers,
            population=self.population,
            sample_size=self.sample_size,
            round_duration=self.round_duration,
        )

    # ------------------------------------------------------------------
    # the round
    # ------------------------------------------------------------------
    def _plan(
        self, round_index: int, active: Optional[np.ndarray] = None
    ) -> RoundPlan:
        if self.coordinator is not None:
            return self.coordinator.plan_round(round_index, active=active)
        selection = self._selector.select(round_index, active=active)
        from repro.core.matching import matching_to_partner_array

        return RoundPlan(
            round_index=round_index,
            matching=selection.matching,
            partners=matching_to_partner_array(
                selection.matching, self.num_workers
            ),
            gossip=selection.gossip,
            mask_seed=derive_seed(self.base_seed, "mask", round_index),
            used_fallback=False,
        )

    def run_round(self, round_index: int) -> float:
        if self.churn is not None:
            active = np.asarray(self.churn.active_at(round_index), dtype=bool)
            if active.shape != (self.num_workers,):
                raise ValueError(
                    f"churn mask has shape {active.shape}, expected "
                    f"({self.num_workers},)"
                )
        else:
            active = np.ones(self.num_workers, dtype=bool)

        if self.sample_size is not None or self.population is not None:
            # Sampled-neighborhood round: matching, local SGD and the
            # exchange all restrict to the drawn (up) participant set.
            # The draw rides a dedicated seed substream so a full-
            # coverage sample changes no other RNG stream.
            if self._participation_rng is None:
                self._participation_rng = np.random.default_rng(
                    derive_seed(self.base_seed, "participation")
                )
            active &= self.participation_context().round_mask(
                round_index, self._participation_rng
            )

        self.last_participants = (
            None if active.all() else np.flatnonzero(active).tolist()
        )
        plan = self._plan(
            round_index, active=None if active.all() else active
        )
        if plan.used_fallback:
            self.fallback_rounds.append(round_index)

        # Local SGD on every *online* worker (Algorithm 2, line 5).
        active_ranks = np.flatnonzero(active)
        if active_ranks.size == 0:
            self.network.finish_round()
            return float("nan")
        # Fused round: with every worker online the shared mask's kept
        # indices are already determined by the round seed, so the
        # compression gather can ride the final local-step update pass
        # (each block's masked columns are read while that block is
        # cache-hot).  Mask generation uses its own seeded generator, so
        # hoisting it before the local phase perturbs no RNG stream.
        fuse = (
            self.fused_gather
            and self.cluster_trainer is not None
            and bool(active.all())
        )
        gathered = mask_indices = None
        if fuse:
            mask = generate_mask(
                self.model_size, self.compression_ratio, plan.mask_seed
            )
            mask_indices = np.flatnonzero(mask)
            losses, gathered = self.cluster_trainer.batched_steps_gather(
                self.local_steps, mask_indices
            )
        elif self.cluster_trainer is not None:
            # Batched: each of the k local steps is one matrix-level
            # forward/backward/update for all online workers at once —
            # same per-worker RNG streams and (worker-major) loss order
            # as the loop, bit-identical trajectories.
            losses = self.cluster_trainer.batched_steps(
                self.local_steps,
                ranks=None if active.all() else active_ranks,
            )
        else:
            with obs.phase("compute"):
                losses = [
                    worker.local_step()
                    for worker, is_up in zip(self.workers, active)
                    if is_up
                    for _ in range(self.local_steps)
                ]

        # Loss-model filtering first (same RNG consumption order as the
        # historical per-pair loop): surviving pairs actually exchange.
        pairs = []
        for a, b in plan.matching:
            if self.loss_model is not None and self.loss_model.exchange_fails(
                round_index, a, b
            ):
                # The exchange was lost: both peers keep their local
                # models (equivalent to being unmatched this round).
                self.dropped_exchanges += 1
                continue
            pairs.append((a, b))

        if self.arena is not None:
            # Batched Eq. (7) end-to-end: one compress_matrix call builds
            # the round's shared mask (Algorithm 2, lines 6-7) and
            # gathers every replica's surviving components in a single
            # fancy-indexed read; the merge averages the matched blocks
            # and scatters back.  Bit-identical to the per-pair path.
            if pairs:
                with obs.phase("comm"):
                    if gathered is not None:
                        # Fused path: values were gathered during the
                        # update pass — bit-identical to re-reading the
                        # arena here.
                        batch = self.compressor.batch_from_values(
                            gathered, mask_indices, plan.mask_seed,
                            model_size=self.model_size,
                        )
                    else:
                        batch = self.compressor.compress_matrix_with_seed(
                            self.arena.data, plan.mask_seed
                        )
                    indices, values = batch.indices, batch.values
                    pair_array = np.asarray(pairs, dtype=np.int64)
                    left, right = pair_array[:, 0], pair_array[:, 1]
                    replicas = self.arena.data
                    for a, b in pairs:
                        self.network.exchange(
                            round_index, a, b, batch[a], batch[b]
                        )
                    averaged = 0.5 * (values[left] + values[right])
                    replicas[np.ix_(left, indices)] = averaged
                    replicas[np.ix_(right, indices)] = averaged
        else:
            # Fallback: per-worker mask application and pairwise Eq. (7)
            # merge over per-model flat copies.
            with obs.phase("comm"):
                mask = generate_mask(
                    self.model_size, self.compression_ratio, plan.mask_seed
                )
                indices = np.flatnonzero(mask)
                for a, b in pairs:
                    params_a = self.workers[a].get_params()
                    params_b = self.workers[b].get_params()
                    payload_a = SharedMaskPayload(
                        values=params_a[indices], indices=indices,
                        mask_seed=plan.mask_seed,
                    )
                    payload_b = SharedMaskPayload(
                        values=params_b[indices], indices=indices,
                        mask_seed=plan.mask_seed,
                    )
                    self.network.exchange(
                        round_index, a, b, payload_a, payload_b
                    )
                    averaged = 0.5 * (params_a[indices] + params_b[indices])
                    params_a[indices] = averaged
                    params_b[indices] = averaged
                    self.workers[a].set_params(params_a)
                    self.workers[b].set_params(params_b)

        if self.network.bandwidth is not None:
            self.round_bandwidths.append(
                utilized_bandwidth_per_round(plan.matching, self.network.bandwidth)
            )
        if self.coordinator is not None:
            for rank in range(self.num_workers):
                if active[rank]:
                    self.coordinator.notify_round_end(rank)
            assert self.coordinator.round_complete()
        self.network.finish_round()
        return float(np.mean(losses))


class RandomChoosePSGD(SAPSPSGD):
    """Fig. 5's "RandomChoose": SAPS-PSGD with uniform random matching."""

    name = "RandomChoose"

    def __init__(self, compression_ratio: float = 100.0, base_seed: int = 0) -> None:
        super().__init__(
            compression_ratio=compression_ratio,
            selector="random",
            base_seed=base_seed,
        )
