"""FedAvg and Sparse FedAvg (S-FedAvg) baselines.

* :class:`FedAvg` — McMahan et al.: per round the server samples a
  fraction ``C`` of workers; each downloads the global model, runs ``E``
  local SGD steps, uploads its model; the server averages.  Worker
  traffic: ``2N`` per participation; server: ``2N`` per participant
  (Table I row FedAvg with the paper's C=0.5 convention).
* :class:`SparseFedAvg` — Konečný et al.'s random-mask *upload*
  compression on top of FedAvg: downloads stay dense (``N``), uploads
  carry ``N/c`` values plus indices (``≈2N/c`` traffic), matching
  Table I's ``(N + 2N/c)T`` per worker.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.algorithms.base import DistributedAlgorithm
from repro.compression.base import BYTES_PER_INDEX, BYTES_PER_VALUE
from repro.compression.topk import k_for
from repro.network.metrics import TrafficMeter


class FedAvg(DistributedAlgorithm):
    """Federated averaging with client sampling."""

    name = "FedAvg"

    def __init__(
        self,
        participation: float = 0.5,
        local_steps: int = 5,
        server_bandwidth: Optional[float] = None,
        sample_size: Optional[int] = None,
        population=None,
        round_duration: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 < participation <= 1.0:
            raise ValueError(f"participation must be in (0, 1], got {participation}")
        if local_steps <= 0:
            raise ValueError(f"local_steps must be positive, got {local_steps}")
        if sample_size is not None and int(sample_size) < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if round_duration <= 0:
            raise ValueError(f"round_duration must be > 0, got {round_duration}")
        self.participation = participation
        self.local_steps = local_steps
        self._server_bandwidth = server_bandwidth
        #: Sampled participation: draw exactly ``sample_size`` clients per
        #: round (optionally from the clients a ``population`` model says
        #: are up at ``round_index * round_duration``) instead of the
        #: classic fraction-``C`` permutation draw.
        self.sample_size = None if sample_size is None else int(sample_size)
        self.population = population
        self.round_duration = float(round_duration)
        self.global_model: Optional[np.ndarray] = None

    def _after_setup(self) -> None:
        # Snapshot: the server's model must not follow worker 0's local
        # steps (get_params may be a live arena-row view).
        self.global_model = self.workers[0].snapshot_params()
        if self._server_bandwidth is None and self.network.bandwidth is not None:
            # The paper's Fig. 6 setup: the server gets the best link.
            self._server_bandwidth = float(self.network.bandwidth.max())
        if (
            self.population is not None
            and self.population.num_clients != self.num_workers
        ):
            raise ValueError(
                f"population models {self.population.num_clients} clients, "
                f"algorithm has {self.num_workers} workers"
            )

    def participation_context(self):
        """The shared selection/gating layer, built from this server's
        sampling knobs (re-created per call so post-construction
        ``sample_size``/``population`` wiring by the CLI is honoured)."""
        # Imported here: repro.algorithms must not import the repro.sim
        # package at module load (sim.comparison imports the algorithms).
        from repro.sim.participation import ParticipationContext

        return ParticipationContext(
            self.num_workers,
            population=self.population,
            sample_size=self.sample_size,
            fraction=self.participation,
            round_duration=self.round_duration,
        )

    def _select(self, round_index: int = 0) -> List[int]:
        # Selection lives in the shared ParticipationContext; the draw
        # consumes self._rng exactly as the historical inline code did.
        return self.participation_context().select_round(
            round_index, self._rng
        )

    def _account(self, round_index: int, selected: List[int], upload_bytes: int) -> None:
        """Dense download + (possibly sparse) upload per selected worker."""
        with obs.phase("comm"):
            self._account_inner(round_index, selected, upload_bytes)

    def _account_inner(
        self, round_index: int, selected: List[int], upload_bytes: int
    ) -> None:
        model_bytes = self.model_size * BYTES_PER_VALUE
        for rank in selected:
            self.network.meter.record(
                round_index, TrafficMeter.SERVER, rank, model_bytes
            )
            self.network.meter.record(
                round_index, rank, TrafficMeter.SERVER, upload_bytes
            )
        if self._server_bandwidth is not None:
            if self.network.contention:
                # Per-participant transfers through the shared server
                # link ends: k downloads serialize on the server's
                # transmit end, k uploads on its receive end.
                server = TrafficMeter.SERVER
                for rank in selected:
                    self.network.timer.add_transfer(
                        model_bytes,
                        self._server_bandwidth,
                        endpoints=self.network.link_endpoints(server, rank),
                    )
                    self.network.timer.add_transfer(
                        upload_bytes,
                        self._server_bandwidth,
                        endpoints=self.network.link_endpoints(rank, server),
                    )
            else:
                total = len(selected) * (model_bytes + upload_bytes)
                self.network.timer.add_transfer(total, self._server_bandwidth)
        self.network.finish_round()

    def run_round(self, round_index: int) -> float:
        selected = self._select(round_index)
        self.last_participants = selected
        if self.cluster_trainer is not None:
            # Download = one row write per participant; E local steps run
            # batched over the selected rows (worker-major loss order,
            # same per-worker RNG streams as the loop).
            rows = np.asarray(selected, dtype=np.intp)
            self.arena.data[rows] = np.asarray(
                self.global_model, dtype=self.arena.dtype
            )
            losses = self.cluster_trainer.batched_steps(
                self.local_steps, ranks=rows
            )
        else:
            losses = []
            with obs.phase("compute"):
                for rank in selected:
                    worker = self.workers[rank]
                    worker.set_params(self.global_model)
                    for _ in range(self.local_steps):
                        losses.append(worker.local_step())
        if self.arena is not None:
            # Server-side average straight off the replica matrix rows.
            self.global_model = self.arena.data[selected].mean(axis=0)
        else:
            uploads = [self.workers[rank].get_params() for rank in selected]
            self.global_model = np.mean(uploads, axis=0)
        self._account(
            round_index, selected, self.model_size * BYTES_PER_VALUE
        )
        return float(np.mean(losses))

    def consensus_model(self) -> np.ndarray:
        """FedAvg's evaluated model is the server's global model."""
        return self.global_model.copy()


class SparseFedAvg(FedAvg):
    """FedAvg with random-mask-sparsified uploads (S-FedAvg)."""

    name = "S-FedAvg"

    def __init__(
        self,
        participation: float = 0.5,
        local_steps: int = 5,
        compression_ratio: float = 100.0,
        server_bandwidth: Optional[float] = None,
        sample_size: Optional[int] = None,
        population=None,
        round_duration: float = 1.0,
    ) -> None:
        super().__init__(
            participation,
            local_steps,
            server_bandwidth,
            sample_size=sample_size,
            population=population,
            round_duration=round_duration,
        )
        if compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1")
        self.compression_ratio = float(compression_ratio)

    def run_round(self, round_index: int) -> float:
        selected = self._select(round_index)
        self.last_participants = selected
        kept = k_for(self.model_size, self.compression_ratio)
        delta_sums = np.zeros(self.model_size, dtype=self.global_model.dtype)
        sender_counts = np.zeros(self.model_size)
        if self.cluster_trainer is not None:
            # Batched local phase; the per-rank upload masks below then
            # draw from the shared RNG in the same rank order as the
            # loop (local sampling uses per-worker streams, so running
            # all the steps first leaves the mask stream untouched).
            rows = np.asarray(selected, dtype=np.intp)
            self.arena.data[rows] = np.asarray(
                self.global_model, dtype=self.arena.dtype
            )
            losses = self.cluster_trainer.batched_steps(
                self.local_steps, ranks=rows
            )
            uploads = [self.arena.data[rank] for rank in selected]
        else:
            losses = []
            uploads = []
            with obs.phase("compute"):
                for rank in selected:
                    worker = self.workers[rank]
                    worker.set_params(self.global_model)
                    for _ in range(self.local_steps):
                        losses.append(worker.local_step())
                    uploads.append(worker.get_params())
        for upload in uploads:
            delta = upload - self.global_model
            # Random-k mask on the *update* (structured/random updates of
            # Konečný et al.) — indices must be shipped, unlike SAPS.
            indices = self._rng.choice(self.model_size, size=kept, replace=False)
            delta_sums[indices] += delta[indices]
            sender_counts[indices] += 1
        # Per-coordinate averaging over the workers that actually sent
        # each coordinate: an unbiased estimate of the mean update on
        # every received coordinate, with FedAvg-like variance (dividing
        # by the full participant count instead would shrink the
        # effective step by c and stall at the paper's c = 100).
        update = np.where(
            sender_counts > 0, delta_sums / np.maximum(sender_counts, 1), 0.0
        )
        # sender_counts is float64 (exact small integers), so the division
        # upcasts; cast back so a float32 global model stays float32
        # (no-op at float64).
        self.global_model = self.global_model + update.astype(
            self.global_model.dtype, copy=False
        )
        upload_bytes = kept * (BYTES_PER_VALUE + BYTES_PER_INDEX)
        self._account(round_index, selected, upload_bytes)
        return float(np.mean(losses))
