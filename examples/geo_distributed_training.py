"""Geo-distributed training over the paper's Fig. 1 bandwidth matrix.

The paper's motivating scenario: 14 workers in 14 cities (4 Alibaba
regions in China, 10 Amazon regions worldwide) with wildly heterogeneous
link speeds.  We train the same model with three peer-selection policies
at identical sparsification (so traffic is equal) and show how adaptive
selection converts the same bytes into much less communication time.

Run:  python examples/geo_distributed_training.py
"""

import numpy as np

from repro.algorithms import SAPSPSGD
from repro.analysis import render_table
from repro.data import make_blobs, partition_iid
from repro.network import FIG1_CITIES, SimulatedNetwork, fig1_environment
from repro.nn import MLP
from repro.sim import ExperimentConfig, run_experiment


def main() -> None:
    bandwidth = fig1_environment()  # 14x14, MB/s, min-symmetrized
    num_workers = bandwidth.shape[0]
    seed = 3

    print(f"Workers ({num_workers} cities): {', '.join(FIG1_CITIES)}")
    off_diag = bandwidth[~np.eye(num_workers, dtype=bool)]
    print(
        f"Link speeds: min={off_diag.min():.4f}  median={np.median(off_diag):.4f}  "
        f"max={off_diag.max():.3f} MB/s\n"
    )

    full = make_blobs(num_samples=60 * num_workers + 300, rng=seed)
    train, validation = full.split(fraction=0.85, rng=seed)
    partitions = partition_iid(train, num_workers, rng=seed)
    config = ExperimentConfig(
        rounds=100, batch_size=16, lr=0.1, eval_every=20, seed=seed
    )

    rows = []
    for selector in ["adaptive", "random", "ring"]:
        algorithm = SAPSPSGD(
            compression_ratio=50.0, selector=selector, base_seed=seed
        )
        network = SimulatedNetwork(num_workers, bandwidth=bandwidth)
        result = run_experiment(
            algorithm,
            partitions,
            validation,
            model_factory=lambda: MLP(32, [32], 10, rng=seed),
            config=config,
            network=network,
        )
        rows.append(
            [
                selector,
                round(100 * result.final_accuracy, 2),
                round(result.history[-1].worker_traffic_mb, 4),
                round(result.history[-1].comm_time_s, 2),
                round(float(np.mean(algorithm.round_bandwidths)), 4),
                len(algorithm.fallback_rounds),
            ]
        )

    print(
        render_table(
            [
                "peer selection",
                "final acc [%]",
                "traffic [MB]",
                "comm time [s]",
                "mean bottleneck [MB/s]",
                "fallback rounds",
            ],
            rows,
            title="SAPS-PSGD on the Fig. 1 geo-distributed environment (c=50)",
        )
    )
    print(
        "\nSame sparsification -> same traffic; adaptive peer selection"
        " raises the bottleneck bandwidth each round, cutting wall-clock"
        " communication time (the paper's Fig. 5 + Fig. 6 story)."
    )


if __name__ == "__main__":
    main()
