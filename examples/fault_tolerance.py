"""Fault-tolerance walkthrough: crash, recover, and count the damage.

The paper's setting — federated workers on consumer hardware and WAN
links — makes failure the normal case, not the exception.  This example
runs the asynchronous SAPS-style gossip variant twice on the same
simulated clock and seed:

1. a fault-free baseline;
2. the same run with a scripted fault plan — worker 2 crashes at
   t=30 s mid-training and comes back at t=40 s via **peer-fetch
   recovery** (it re-downloads a live neighbor's current model over
   the fastest link, paying the transfer), while a WAN link outage
   hits (0, 1) for ten seconds.

Survivors that were mid-exchange with the crashed worker hit their
per-exchange deadline, retry with exponential backoff, and finally
re-match elsewhere — training never stalls.  The report at the end is
the robustness scorecard: exchange goodput, retries, per-worker
downtime/MTTR, and the accuracy + time-to-target degradation against
the fault-free twin.

Run:  python examples/fault_tolerance.py
"""

from repro.algorithms import AsyncGossip
from repro.analysis import (
    degradation_report,
    render_degradation,
    render_resilience_summary,
    render_worker_resilience,
    resilience_summary,
    worker_resilience_table,
)
from repro.data import make_blobs, partition_iid
from repro.network import SimulatedNetwork, random_uniform_bandwidth
from repro.nn import MLP
from repro.resilience import ExchangePolicy, make_recovery_policy
from repro.sim import (
    ExperimentConfig,
    HeterogeneousCompute,
    run_event_experiment,
)
from repro.sim.faults import FaultPlan


def main() -> None:
    num_workers = 8
    seed = 1
    duration = 60.0

    # Separation 1.2 makes the blobs genuinely hard: accuracy is still
    # climbing when the faults hit, so the degradation is visible.
    full = make_blobs(
        num_samples=60 * num_workers + 200, separation=1.2, rng=seed
    )
    train, validation = full.split(fraction=0.8, rng=seed)
    partitions = partition_iid(train, num_workers, rng=seed)
    bandwidth = random_uniform_bandwidth(num_workers, rng=seed)
    factory = lambda: MLP(32, [32], 10, rng=seed)
    config = ExperimentConfig(
        rounds=60, batch_size=16, lr=0.02, eval_every=10, seed=seed
    )

    def run(fault_plan=None):
        return run_event_experiment(
            AsyncGossip(compression_ratio=100.0, base_seed=seed),
            partitions, validation, factory, config,
            SimulatedNetwork(num_workers, bandwidth=bandwidth),
            # A straggler spread desynchronizes the cycles, so pairings
            # wander across the whole fleet (and across the faulty link).
            compute_model=HeterogeneousCompute(
                num_workers, mean_step_time=0.2, spread=6.0, jitter=0.0,
                rng=seed,
            ),
            duration=duration,
            checkpoint_every=2.0,
            fault_plan=fault_plan,
            exchange_policy=ExchangePolicy(timeout=1.0, seed=seed),
            recovery=make_recovery_policy("peer"),
        )

    # 1. The fault-free twin (a fault plan of None is bit-identical to
    #    not wiring the fault machinery at all).
    baseline = run()

    # 2. The same run under the scripted scenario.  The plan grammar is
    #    the CLI's: "crash:2@30,recover:2@40,link_down:0-3@10,link_up:0-3@15".
    plan = FaultPlan.parse(
        "crash:2@30,recover:2@40,link_down:0-1@10,link_up:0-1@20",
        num_workers,
    )
    faulty = run(plan)

    stats = faulty.resilience
    print(render_resilience_summary(resilience_summary(stats)))
    print()
    print(render_worker_resilience(worker_resilience_table(stats, duration)))
    print()

    restored_by = {policy for _, policy, _ in stats.restores}
    print(
        f"Worker 2 was down {stats.worker_downtime_seconds(2):.1f}s and "
        f"restarted via {sorted(restored_by)} recovery "
        f"(restored-state staleness "
        f"{stats.mean_restore_staleness() or 0.0:.2f}s).\n"
    )

    # 3. What the faults cost: accuracy deltas and the time-to-target
    #    slip against the fault-free twin.
    target = 0.9 * baseline.best_accuracy
    print(render_degradation(degradation_report(faulty, baseline, target)))


if __name__ == "__main__":
    main()
