"""Asynchronous gossip walkthrough: simulated wall-clock training.

The paper's headline result is communication *time*: SAPS-PSGD wins
because adaptive peer selection avoids slow WAN links.  The event engine
(:mod:`repro.sim.events`) extends that story to the asynchronous regime:
no round barrier, so a straggler never gates the cluster.

This example runs the same workload three ways on one simulated clock —

1. synchronous SAPS-PSGD, replayed on the event timeline
   (:func:`run_sync_timeline`: per-worker compute intervals + the
   round's transfers + the barrier);
2. asynchronous SAPS-style gossip (:class:`AsyncGossip`: a pair
   exchanges masked components as soon as both endpoints are free);
3. AD-PSGD-style asynchronous decentralized SGD (:class:`AsyncDPSGD`:
   communication overlaps compute, staleness tracked per gradient) —

under *heterogeneous* compute (a 6x straggler spread), then prints the
time-to-target-accuracy table and the per-worker
compute/communication/idle breakdown that shows where the synchronous
barrier loses its time.

Run:  python examples/async_gossip.py
"""

from repro.algorithms import AsyncDPSGD, AsyncGossip, SAPSPSGD
from repro.analysis import (
    render_time_to_accuracy,
    render_worker_timeline,
    time_to_accuracy_table,
    worker_timeline,
)
from repro.data import make_blobs, partition_iid
from repro.network import SimulatedNetwork, random_uniform_bandwidth
from repro.sim import (
    ExperimentConfig,
    HeterogeneousCompute,
    run_event_experiment,
    run_sync_timeline,
)
from repro.nn import MLP


def main() -> None:
    num_workers = 8
    seed = 1

    full = make_blobs(num_samples=60 * num_workers + 200, rng=seed)
    train, validation = full.split(fraction=0.8, rng=seed)
    partitions = partition_iid(train, num_workers, rng=seed)
    bandwidth = random_uniform_bandwidth(num_workers, rng=seed)
    factory = lambda: MLP(32, [32], 10, rng=seed)
    config = ExperimentConfig(
        rounds=60, batch_size=16, lr=0.1, eval_every=10, seed=seed
    )

    # A mixed fleet: per-worker mean step times spread log-uniformly
    # over [0.05/sqrt(6), 0.05*sqrt(6)] seconds — the straggler regime.
    def compute_model():
        return HeterogeneousCompute(
            num_workers, mean_step_time=0.05, spread=6.0, jitter=0.0, rng=seed
        )

    results = {}

    # 1. Synchronous SAPS on the event timeline: every round waits for
    #    the slowest participant, then for the slowest exchange.
    results["SAPS-PSGD (sync)"] = run_sync_timeline(
        SAPSPSGD(compression_ratio=100.0, base_seed=seed),
        partitions, validation, factory, config,
        SimulatedNetwork(num_workers, bandwidth=bandwidth),
        compute_model=compute_model(),
    )

    # 2/3. Asynchronous variants: same simulated-time budget as the sync
    #      run consumed, no barrier.
    horizon = results["SAPS-PSGD (sync)"].horizon
    results["Async-SAPS"] = run_event_experiment(
        AsyncGossip(compression_ratio=100.0, base_seed=seed),
        partitions, validation, factory, config,
        SimulatedNetwork(num_workers, bandwidth=bandwidth),
        compute_model=compute_model(),
        duration=horizon,
    )
    results["Async-D-PSGD"] = run_event_experiment(
        AsyncDPSGD(),
        partitions, validation, factory, config,
        SimulatedNetwork(num_workers, bandwidth=bandwidth),
        compute_model=compute_model(),
        duration=horizon,
    )

    sync = results["SAPS-PSGD (sync)"]
    print(
        f"Synchronous SAPS consumed {sync.horizon:.2f}s of simulated time "
        f"for {config.rounds} rounds; async variants get the same budget.\n"
    )

    target = 0.9 * min(result.best_accuracy for result in results.values())
    print(render_time_to_accuracy(time_to_accuracy_table(results, target)))

    for name in ("SAPS-PSGD (sync)", "Async-SAPS"):
        result = results[name]
        print(f"\n{name}:")
        print(render_worker_timeline(worker_timeline(result.trace, result.horizon)))

    async_result = results["Async-D-PSGD"]
    if async_result.staleness:
        mean = sum(async_result.staleness) / len(async_result.staleness)
        print(
            f"\nAsync-D-PSGD applied {len(async_result.staleness)} gradients, "
            f"mean staleness {mean:.2f} "
            f"(max {max(async_result.staleness)})."
        )


if __name__ == "__main__":
    main()
