"""The paper's full 7-algorithm comparison on a non-IID federated workload.

Runs PSGD, TopK-PSGD, FedAvg, S-FedAvg, D-PSGD, DCD-PSGD and SAPS-PSGD on
the same Dirichlet-skewed shards and prints Table III- and Table IV-style
summaries: final accuracy, and traffic/time to a common target accuracy.

Run:  python examples/federated_comparison.py
"""

import numpy as np

from repro.analysis import costs_at_target, pick_common_target, render_table
from repro.data import label_distribution, make_blobs, partition_dirichlet
from repro.network import random_uniform_bandwidth
from repro.nn import MLP
from repro.sim import ExperimentConfig, SuiteSettings, run_comparison


def main() -> None:
    num_workers = 12
    seed = 5

    full = make_blobs(num_samples=70 * num_workers + 300, rng=seed)
    train, validation = full.split(fraction=0.85, rng=seed)
    partitions = partition_dirichlet(
        train, num_workers, alpha=1.0, rng=seed, min_samples=20
    )
    table = label_distribution(partitions, full.num_classes)
    print("Per-worker label counts (non-IID Dirichlet alpha=1.0):")
    print(
        render_table(
            ["worker"] + [f"c{k}" for k in range(full.num_classes)],
            [[i] + row.tolist() for i, row in enumerate(table)],
        )
    )

    bandwidth = random_uniform_bandwidth(num_workers, rng=seed)
    config = ExperimentConfig(
        rounds=150, batch_size=16, lr=0.1, eval_every=10, seed=seed
    )
    settings = SuiteSettings(
        saps_compression=20.0, topk_compression=100.0, sfedavg_compression=20.0
    )
    results = run_comparison(
        partitions,
        validation,
        lambda: MLP(32, [32], 10, rng=seed),
        config,
        bandwidth=bandwidth,
        settings=settings,
    )

    print(
        "\n"
        + render_table(
            ["Algorithm", "final acc [%]", "traffic [MB]", "time [s]"],
            [
                [
                    name,
                    round(100 * result.final_accuracy, 2),
                    round(result.history[-1].worker_traffic_mb, 4),
                    round(result.history[-1].comm_time_s, 3),
                ]
                for name, result in results.items()
            ],
            title="Table III-style summary (non-IID, 12 workers)",
        )
    )

    target = pick_common_target(results, fraction_of_best=0.85)
    rows = costs_at_target(results, target)
    print(
        "\n"
        + render_table(
            ["Algorithm", "traffic to target [MB]", "time to target [s]"],
            [
                [
                    row.algorithm,
                    None if row.traffic_mb is None else round(row.traffic_mb, 4),
                    None
                    if row.time_seconds is None
                    else round(row.time_seconds, 3),
                ]
                for row in rows
            ],
            title=(
                f"Table IV-style summary — cost to reach "
                f"{100 * target:.1f}% accuracy"
            ),
        )
    )


if __name__ == "__main__":
    main()
