"""Theory walkthrough: Assumption 3, Lemma 2 and Theorem 2, numerically.

1. Estimate ρ — the second-largest eigenvalue of E[WᵀW] — for the
   adaptive selector, random matching and a fixed (disconnected) matching.
2. Check Lemma 2: the measured consensus contraction of sparsified gossip
   matches the predicted factor (q + pρ²).
3. Evaluate Theorem 2's bound across compression ratios and horizon T.

Run:  python examples/consensus_theory.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core.gossip import (
    AdaptivePeerSelector,
    RandomPeerSelector,
    gossip_matrix_from_matching,
)
from repro.network import random_uniform_bandwidth
from repro.theory import (
    ProblemConstants,
    consensus_factor,
    estimate_rho,
    random_initial_states,
    rounds_to_epsilon,
    simulate_consensus,
    theorem2_bound,
)


def main() -> None:
    num_workers = 16
    bandwidth = random_uniform_bandwidth(num_workers, rng=0)

    # --- 1. rho under different selection policies -------------------
    adaptive = AdaptivePeerSelector(bandwidth, connectivity_gap=10, rng=0)
    random_sel = RandomPeerSelector(num_workers, rng=0)
    fixed = gossip_matrix_from_matching(
        [(i, i + 1) for i in range(0, num_workers, 2)], num_workers
    )
    rows = [
        ["adaptive (Alg. 3)", round(estimate_rho(lambda t: adaptive.select(t).gossip, 300), 4)],
        ["random matching", round(estimate_rho(lambda t: random_sel.select(t).gossip, 300), 4)],
        ["one fixed matching", round(estimate_rho(lambda t: fixed, 10), 4)],
    ]
    print(
        render_table(
            ["peer selection", "rho of E[WtW]"],
            rows,
            title="Assumption 3: rho < 1 requires PC edges to span a connected graph",
        )
    )
    print(
        "A single fixed matching is disconnected -> rho = 1 -> no consensus;"
        "\nAlgorithm 3's T_thres reconnection keeps rho < 1.\n"
    )

    # --- 2. Lemma 2: predicted vs measured contraction ----------------
    rows = []
    for ratio in [1.0, 4.0, 16.0, 64.0]:
        selector = RandomPeerSelector(num_workers, rng=1)
        rho = estimate_rho(lambda t: selector.select(t).gossip, 300)
        predicted = consensus_factor(ratio, rho)
        runner = RandomPeerSelector(num_workers, rng=2)
        trace = simulate_consensus(
            random_initial_states(num_workers, 200, rng=3),
            lambda t: runner.select(t).gossip,
            rounds=200,
            compression_ratio=ratio,
            seed=4,
        )
        rows.append(
            [
                int(ratio),
                round(predicted, 4),
                round(trace.empirical_rate(), 4),
                rounds_to_epsilon(predicted, 1e-3),
            ]
        )
    print(
        render_table(
            ["c", "predicted q+p*rho^2", "measured rate", "rounds to 1e-3"],
            rows,
            title="Lemma 2: per-round consensus contraction under sparsified gossip",
        )
    )

    # --- 3. Theorem 2's bound -----------------------------------------
    constants = ProblemConstants(lipschitz=1.0, sigma=1.0, f0_minus_fstar=1.0)
    rho = 0.9
    rows = []
    for rounds in [10**3, 10**5, 10**7]:
        row = [f"1e{int(np.log10(rounds))}"]
        for ratio in [1.0, 10.0, 100.0]:
            row.append(
                f"{theorem2_bound(constants, ratio, rho, 32, rounds):.3e}"
            )
        rows.append(row)
    print(
        "\n"
        + render_table(
            ["T", "bound c=1", "bound c=10", "bound c=100"],
            rows,
            title="Theorem 2: avg gradient-norm bound, n=32 (same O(1/sqrt(nT)) rate; larger c only inflates the transient)",
        )
    )


if __name__ == "__main__":
    main()
