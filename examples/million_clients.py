"""Million-enrolled-client asynchronous federated averaging on a laptop.

Cross-device federated learning enrolls populations far larger than any
round's participant set: a million phones register, a few hundred are
up, idle and charging when the server samples a round.  Simulating that
regime needs every per-client cost to be lazy — this example is the
PR's tentpole demo, composing:

* :class:`~repro.nn.ShardedArena` — parameter rows materialize only for
  clients actually participating (LRU shard, ``capacity`` rows), so
  resident model memory is ∝ the active set, not the enrolment;
* :class:`~repro.sim.RenewalPopulation` — per-client exponential
  up/down arrival processes, generated lazily per touched client;
* :class:`~repro.algorithms.SampledAsyncFedAvg` — a K-seat in-flight
  participant pool over the population with FedAsync staleness-weighted
  server mixing, per-client data synthesized on demand from seed
  substreams;
* the calendar-queue event engine — bucketed O(1) scheduling for the
  sampling storm of download/compute/upload events.

Reports events/second through the scheduler and resident bytes per
enrolled client — the honest scale numbers.  A dense arena at the same
enrolment would need ``2 * n * model_size * 8`` bytes (~5 GB at the
defaults); here the arena stays in the low MB.

Run:  python examples/million_clients.py
      python examples/million_clients.py --clients 50000 --sim-time 20
"""

import argparse
import time

import numpy as np

from repro.algorithms import LogisticBlobsTask, SampledAsyncFedAvg
from repro.network.transport import SimulatedNetwork
from repro.sim import ConstantCompute, EventEngine, RenewalPopulation


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Million-enrolled-client sampled AsyncFedAvg"
    )
    parser.add_argument("--clients", type=int, default=1_000_000,
                        help="enrolled population size")
    parser.add_argument("--sample", type=int, default=512,
                        help="in-flight participant seats")
    parser.add_argument("--capacity", type=int, default=None,
                        help="resident arena rows (default: 2*sample+16)")
    parser.add_argument("--sim-time", type=float, default=40.0,
                        help="simulated seconds to run")
    parser.add_argument("--local-steps", type=int, default=2)
    parser.add_argument("--compute-time", type=float, default=0.5,
                        help="simulated seconds per local step")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = LogisticBlobsTask(num_features=32, num_classes=10, seed=args.seed)
    algorithm = SampledAsyncFedAvg(
        task,
        num_clients=args.clients,
        sample_size=args.sample,
        capacity=args.capacity,
        local_steps=args.local_steps,
        lr=0.1,
        seed=args.seed,
    )
    population = RenewalPopulation(
        args.clients, mean_up=60.0, mean_down=30.0, seed=args.seed
    )
    network = SimulatedNetwork(args.clients, server_bandwidth=100.0)
    engine = EventEngine(
        network,
        compute_model=ConstantCompute(args.compute_time),
        population=population,
        record_trace=False,  # per-worker traces are O(events) memory
    )

    dense_bytes = 2 * args.clients * task.model_size * 8
    print(f"enrolled clients    : {args.clients:,}")
    print(f"participant seats   : {args.sample}")
    print(f"arena capacity      : {algorithm.arena.capacity} rows "
          f"(dense equivalent: {dense_bytes / 1e9:.2f} GB)")

    wall_start = time.perf_counter()
    result = engine.run(
        algorithm,
        validation=task,
        duration=args.sim_time,
        checkpoint_every=args.sim_time / 4,
    )
    wall = time.perf_counter() - wall_start

    resident = algorithm.arena.resident_bytes()
    print()
    print(f"simulated seconds   : {args.sim_time}")
    print(f"wall seconds        : {wall:.2f}")
    print(f"events processed    : {result.events_processed:,} "
          f"({result.events_processed / wall:,.0f} events/s)")
    print(f"server updates      : {algorithm.server_version:,} "
          f"(mean staleness {np.mean(algorithm.staleness_log):.1f})")
    print(f"clients touched     : {population.touched_clients:,} "
          f"(arena stats: {algorithm.arena.stats()})")
    print(f"resident arena bytes: {resident:,} "
          f"({resident / args.clients:.4f} bytes/enrolled client; dense "
          f"would be {dense_bytes / args.clients:.0f})")
    print()
    print("trajectory (simulated time -> validation accuracy):")
    for record in result.history:
        print(f"  t={record.time_s:7.1f}s  acc={record.val_accuracy:6.1%}  "
              f"loss={record.val_loss:.3f}  staleness={record.mean_staleness:.1f}")
    final = result.history[-1]
    initial = result.history[0]
    assert final.val_accuracy > initial.val_accuracy, (
        "the sampled run should learn"
    )
    # Resident bytes are a function of capacity, not enrolment, so the
    # ratio to the dense arena improves with n (1000x at a million).
    assert resident < dense_bytes / 10, "resident memory must stay sharded"
    print("\nOK: memory stayed proportional to the active set while the "
          "global model learned.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
