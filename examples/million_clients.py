"""Million-enrolled-client federated learning on a laptop — two families.

Cross-device federated learning enrolls populations far larger than any
round's participant set: a million phones register, a few hundred are
up, idle and charging when a round samples.  Simulating that regime
needs every per-client cost to be lazy.  This example demos both
execution families on the same lazy substrate:

* ``--family fedavg`` (default) — :class:`~repro.algorithms.
  SampledAsyncFedAvg`: a K-seat in-flight participant pool with FedAsync
  staleness-weighted server mixing, driven by the calendar-queue event
  engine over a :class:`~repro.sim.RenewalPopulation`;
* ``--family gossip`` — :class:`~repro.algorithms.SampledSAPS`:
  sampled-neighborhood SAPS-PSGD, where each round draws participants
  through the shared participation layer, max-weight-matches *within*
  the sample on lazily seeded bottleneck-link bandwidths, and runs the
  paper's shared-mask Eq. (7) exchange on pinned
  :class:`~repro.nn.ShardedArena` rows (writeback on eviction — gossip
  state is peer-to-peer, it must survive between participations).

Both report resident bytes per enrolled client plus the arena's pin
telemetry (``pin_contentions``, ``peak_pins``) — the honest scale
numbers.  A dense arena at the same enrolment would need
``2 * n * model_size * 8`` bytes (~5 GB at the defaults); here the
arena stays in the low MB.

Run:  python examples/million_clients.py
      python examples/million_clients.py --clients 50000 --sim-time 20
      python examples/million_clients.py --family gossip --clients 100000
"""

import argparse
import time

import numpy as np

from repro.algorithms import LogisticBlobsTask, SampledAsyncFedAvg, SampledSAPS
from repro.network.transport import SimulatedNetwork
from repro.sim import ConstantCompute, EventEngine, RenewalPopulation


def _report_memory(algorithm, clients: int, dense_bytes: int) -> int:
    stats = algorithm.arena.stats()
    resident = algorithm.arena.resident_bytes()
    print(f"arena stats (cumulative, whole run): {stats}")
    print(f"pin telemetry       : peak {stats['peak_pins']} simultaneous "
          f"pins, {stats['pin_contentions']} pinned-victim skips "
          f"(both whole-run totals)")
    print(f"resident arena bytes: {resident:,} "
          f"({resident / clients:.4f} bytes/enrolled client; dense "
          f"would be {dense_bytes / clients:.0f})")
    return resident


def run_fedavg(args, task, dense_bytes: int) -> int:
    algorithm = SampledAsyncFedAvg(
        task,
        num_clients=args.clients,
        sample_size=args.sample,
        capacity=args.capacity,
        local_steps=args.local_steps,
        lr=0.1,
        seed=args.seed,
    )
    population = RenewalPopulation(
        args.clients, mean_up=60.0, mean_down=30.0, seed=args.seed
    )
    network = SimulatedNetwork(args.clients, server_bandwidth=100.0)
    engine = EventEngine(
        network,
        compute_model=ConstantCompute(args.compute_time),
        population=population,
        record_trace=False,  # per-worker traces are O(events) memory
    )

    print(f"arena capacity      : {algorithm.arena.capacity} rows "
          f"(dense equivalent: {dense_bytes / 1e9:.2f} GB)")

    wall_start = time.perf_counter()
    result = engine.run(
        algorithm,
        validation=task,
        duration=args.sim_time,
        checkpoint_every=args.sim_time / 4,
    )
    wall = time.perf_counter() - wall_start

    print()
    print(f"simulated seconds   : {args.sim_time}")
    print(f"wall seconds        : {wall:.2f}")
    print(f"events processed    : {result.events_processed:,} "
          f"({result.events_processed / wall:,.0f} events/s)")
    print(f"server updates      : {algorithm.server_version:,} "
          f"(mean staleness {np.mean(algorithm.staleness_log):.1f})")
    print(f"clients touched     : {population.touched_clients:,}")
    resident = _report_memory(algorithm, args.clients, dense_bytes)
    print()
    print("trajectory (simulated time -> validation accuracy):")
    for record in result.history:
        print(f"  t={record.time_s:7.1f}s  acc={record.val_accuracy:6.1%}  "
              f"loss={record.val_loss:.3f}  staleness={record.mean_staleness:.1f}")
    final = result.history[-1]
    initial = result.history[0]
    assert final.val_accuracy > initial.val_accuracy, (
        "the sampled run should learn"
    )
    # Resident bytes are a function of capacity, not enrolment, so the
    # ratio to the dense arena improves with n (1000x at a million).
    assert resident < dense_bytes / 10, "resident memory must stay sharded"
    print("\nOK: memory stayed proportional to the active set while the "
          "global model learned.")
    return 0


def run_gossip(args, task, dense_bytes: int) -> int:
    population = RenewalPopulation(
        args.clients, mean_up=60.0, mean_down=30.0, seed=args.seed
    )
    algorithm = SampledSAPS(
        task,
        num_clients=args.clients,
        sample_size=args.sample,
        capacity=args.capacity,
        local_steps=args.local_steps,
        lr=0.1,
        population=population,
        round_duration=args.round_duration,
        seed=args.seed,
    )
    rounds = max(1, int(args.sim_time / args.round_duration))
    print(f"arena capacity      : {algorithm.arena.capacity} rows "
          f"(dense equivalent: {dense_bytes / 1e9:.2f} GB)")
    print(f"gossip rounds       : {rounds}")

    wall_start = time.perf_counter()
    history = []
    eval_every = max(1, rounds // 4)
    algorithm.arena.stats_delta()  # baseline: intervals report deltas, not run totals
    for round_index in range(rounds):
        loss = algorithm.run_round(round_index)
        if round_index % eval_every == eval_every - 1 or round_index == rounds - 1:
            val_loss, val_acc = algorithm.evaluate()
            history.append(
                (round_index, loss, val_loss, val_acc,
                 algorithm.arena.stats_delta())
            )
    wall = time.perf_counter() - wall_start

    print()
    print(f"wall seconds        : {wall:.2f} "
          f"({rounds / wall:.1f} rounds/s)")
    print(f"pairwise exchanges  : {algorithm.exchange_count:,} "
          f"({algorithm.exchanged_bytes / 1e6:.2f} MB masked traffic)")
    print(f"clients touched     : {population.touched_clients:,}")
    resident = _report_memory(algorithm, args.clients, dense_bytes)
    print()
    print("trajectory (round -> streamed-consensus validation accuracy; "
          "arena flow counters are per-interval deltas):")
    for round_index, loss, val_loss, val_acc, delta in history:
        print(f"  round {round_index:4d}  acc={val_acc:6.1%}  "
              f"val_loss={val_loss:.3f}  train_loss={loss:.3f}")
        print(f"    arena Δ: +{delta['misses']} loads, "
              f"{delta['evictions']} evictions "
              f"({delta['writebacks']} writebacks, "
              f"{delta['writeback_bytes']:,} B written back), "
              f"{delta['hits']} hits, "
              f"{delta['pin_contentions']} pin contentions")
    _, first_acc = task.evaluate(np.zeros(task.model_size))
    assert history[-1][3] > first_acc, "the sampled gossip run should learn"
    # Unlike the store-free fedavg family, gossip keeps a writeback row
    # per *touched* client (peer state must survive eviction), so the
    # footprint scales with rounds x sample — still independent of
    # enrolment, but the dense ratio at the CI-sized 50k run is looser.
    assert resident < dense_bytes / 4, "resident memory must stay sharded"
    print("\nOK: memory stayed proportional to the active set while the "
          "streamed consensus model learned.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Million-enrolled-client sampled federated learning"
    )
    parser.add_argument("--family", choices=["fedavg", "gossip"],
                        default="fedavg",
                        help="server-centric FedAsync pool or "
                        "sampled-neighborhood SAPS gossip")
    parser.add_argument("--clients", type=int, default=1_000_000,
                        help="enrolled population size")
    parser.add_argument("--sample", type=int, default=512,
                        help="in-flight seats / sampled neighborhood size")
    parser.add_argument("--capacity", type=int, default=None,
                        help="resident arena rows (default: 2*sample+16)")
    parser.add_argument("--sim-time", type=float, default=40.0,
                        help="simulated seconds to run")
    parser.add_argument("--local-steps", type=int, default=2)
    parser.add_argument("--compute-time", type=float, default=0.5,
                        help="simulated seconds per local step (fedavg)")
    parser.add_argument("--round-duration", type=float, default=1.0,
                        help="simulated seconds per gossip round (gossip)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = LogisticBlobsTask(num_features=32, num_classes=10, seed=args.seed)
    dense_bytes = 2 * args.clients * task.model_size * 8
    print(f"family              : {args.family}")
    print(f"enrolled clients    : {args.clients:,}")
    print(f"participant sample  : {args.sample}")
    if args.family == "gossip":
        return run_gossip(args, task, dense_bytes)
    return run_fedavg(args, task, dense_bytes)


if __name__ == "__main__":
    raise SystemExit(main())
