"""Parameter-sweep example: compression ratio × peer selection.

Shows the sweep API (`repro.sim.run_sweep` / `grid`) on the paper's two
knobs at once and prints a tidy table plus the dominance analysis: which
configuration leads the accuracy-per-MB frontier at every budget.

Run:  python examples/compression_sweep.py
"""

import numpy as np

from repro.algorithms import SAPSPSGD
from repro.analysis import dominance_summary, render_table
from repro.data import make_blobs, partition_iid
from repro.network import random_uniform_bandwidth
from repro.nn import MLP
from repro.sim import (
    ExperimentConfig,
    grid,
    run_sweep,
    sweep_headers,
    sweep_table,
)

NUM_WORKERS = 8


def main() -> None:
    seed = 11
    full = make_blobs(num_samples=60 * NUM_WORKERS + 200, rng=seed)
    train, validation = full.split(fraction=0.85, rng=seed)
    partitions = partition_iid(train, NUM_WORKERS, rng=seed)
    bandwidth = random_uniform_bandwidth(NUM_WORKERS, rng=seed)
    config = ExperimentConfig(
        rounds=80, batch_size=16, lr=0.1, eval_every=10, seed=seed
    )

    cells = run_sweep(
        lambda compression_ratio, selector: SAPSPSGD(
            compression_ratio=compression_ratio,
            selector=selector,
            base_seed=seed,
        ),
        grid(
            compression_ratio=[1.0, 10.0, 100.0],
            selector=["adaptive", "random"],
        ),
        partitions,
        validation,
        lambda: MLP(32, [32], 10, rng=seed),
        config,
        bandwidth=bandwidth,
    )

    print(
        render_table(
            sweep_headers(cells),
            sweep_table(cells),
            title="SAPS-PSGD sweep: compression x peer selection",
        )
    )

    results = {
        f"c={cell.params['compression_ratio']:g}/{cell.params['selector']}":
            cell.result
        for cell in cells
    }
    for name, result in results.items():
        result.algorithm = name
    summary = dominance_summary(results, cost_attr="comm_time_s")
    rows = sorted(
        ([name, round(share, 3)] for name, share in summary.items()),
        key=lambda row: -row[1],
    )
    print(
        "\n"
        + render_table(
            ["configuration", "share of time budgets led"],
            rows,
            title="Dominance over the accuracy-vs-communication-time frontier",
        )
    )
    print(
        "\nHigh compression + adaptive selection leads at (almost) every"
        "\ncommunication-time budget — Figs. 4/6 condensed to one number."
    )


if __name__ == "__main__":
    main()
