"""Wire-level walkthrough of Algorithms 1-2 over the message bus.

Runs the SAPS-PSGD protocol exactly as Fig. 2 draws it: the coordinator
and workers exchange *status* messages (TrainTask / RoundStart /
RoundEnd) over a bus, while matched peers exchange sparsified-model
payloads directly — and prints the byte ledger of both planes, making the
"lightweight coordinator" claim concrete.

Run:  python examples/protocol_walkthrough.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core.messages import (
    COORDINATOR,
    MessageBus,
    MessagingCoordinator,
    ModelUpload,
    RoundEnd,
    RoundStart,
)
from repro.core.protocol import Coordinator, ModelExchangeWorker, exchange_pair
from repro.network import random_uniform_bandwidth

NUM_WORKERS = 6
MODEL_SIZE = 100_000
COMPRESSION = 100.0
ROUNDS = 8


def main() -> None:
    rng = np.random.default_rng(0)
    bus = MessageBus()
    coordinator = MessagingCoordinator(
        Coordinator(random_uniform_bandwidth(NUM_WORKERS, rng=0), base_seed=7, rng=0),
        bus,
        net_name="mnist-cnn",
        total_rounds=ROUNDS,
    )
    workers = [
        ModelExchangeWorker(rank, rng.normal(size=MODEL_SIZE), COMPRESSION)
        for rank in range(NUM_WORKERS)
    ]

    coordinator.announce_task()
    for rank in range(NUM_WORKERS):
        task = bus.receive(rank)  # each worker reads its TrainTask
        assert task.net_name == "mnist-cnn"
    print(f"Coordinator announced task to {NUM_WORKERS} workers "
          f"({bus.status_bytes} status bytes so far)\n")

    model_plane_bytes = 0
    for t in range(ROUNDS):
        plan = coordinator.start_round(t)

        # Workers read their RoundStart and perform the peer exchange.
        partners = {}
        for rank in range(NUM_WORKERS):
            message = bus.receive(rank)
            assert isinstance(message, RoundStart)
            partners[rank] = (message.partner, message.mask_seed)

        for a, b in plan.matching:
            payload_a, payload_b = exchange_pair(
                workers[a], workers[b], partners[a][1]
            )
            model_plane_bytes += payload_a.num_bytes() + payload_b.num_bytes()

        for rank in range(NUM_WORKERS):
            bus.send(RoundEnd(sender=rank, recipient=COORDINATOR, round_index=t))
        coordinator.drain_round_ends()
        assert coordinator.round_complete()

    # Any worker uploads the final model (Algorithm 1, line 8).
    bus.send(
        ModelUpload(sender=0, recipient=COORDINATOR, model=workers[0].x)
    )
    coordinator.drain_round_ends()

    rows = [
        ["status plane (coordinator<->workers)", bus.status_bytes, bus.status_bytes / ROUNDS / NUM_WORKERS],
        ["model plane (peer<->peer, sparsified)", model_plane_bytes, model_plane_bytes / ROUNDS / NUM_WORKERS],
        ["final model upload (once)", bus.model_bytes, "-"],
    ]
    print(
        render_table(
            ["plane", "total bytes", "bytes/worker/round"],
            rows,
            title=(
                f"Byte ledger: {ROUNDS} rounds, {NUM_WORKERS} workers, "
                f"N={MODEL_SIZE:,}, c={COMPRESSION:g}"
            ),
        )
    )
    dense = MODEL_SIZE * 4
    sparse = model_plane_bytes / ROUNDS / NUM_WORKERS
    print(
        f"\nA dense model is {dense:,} bytes; each worker moved ~{sparse:,.0f}"
        f" bytes/round (≈2N/c), and the coordinator handled only status"
        f" messages plus one final model — it is a tracker, not a parameter"
        f" server."
    )
    assert coordinator.final_model is not None


if __name__ == "__main__":
    main()
