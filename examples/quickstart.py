"""Quickstart: train with SAPS-PSGD on a synthetic workload in ~5 seconds.

Demonstrates the minimal end-to-end path:

1. build a dataset and shard it across workers (the paper's ``D_p``);
2. pick a bandwidth environment;
3. run SAPS-PSGD and read accuracy / traffic / communication time.

Run:  python examples/quickstart.py
      python examples/quickstart.py --obs trace --trace-out trace.json
"""

import argparse
import json

from repro import obs
from repro.algorithms import SAPSPSGD
from repro.analysis import render_obs_report, render_table
from repro.data import make_blobs, partition_iid
from repro.network import SimulatedNetwork, random_uniform_bandwidth
from repro.nn import MLP
from repro.sim import ExperimentConfig, run_experiment


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description="SAPS-PSGD quickstart")
    parser.add_argument(
        "--obs", choices=["off", "metrics", "trace"], default="off",
        help="telemetry mode (never changes the numbers)",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the metrics snapshot JSON (implies --obs metrics)",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="write a Chrome trace-event JSON (implies --obs trace)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    obs_mode = args.obs
    if args.trace_out:
        obs_mode = "trace"
    elif args.metrics_out and obs_mode == "off":
        obs_mode = "metrics"
    if obs_mode != "off":
        obs.start(obs_mode)

    num_workers = 8
    seed = 1

    # Data: one distribution, split into train/validation, sharded IID.
    full = make_blobs(num_samples=60 * num_workers + 200, rng=seed)
    train, validation = full.split(fraction=0.8, rng=seed)
    partitions = partition_iid(train, num_workers, rng=seed)

    # Network: the paper's 32-worker environment scaled down — pairwise
    # speeds uniform on (0, 5] MB/s.
    bandwidth = random_uniform_bandwidth(num_workers, rng=seed)
    network = SimulatedNetwork(num_workers, bandwidth=bandwidth)

    # Algorithm: SAPS-PSGD with the paper's compression ratio c=100.
    algorithm = SAPSPSGD(compression_ratio=100.0, base_seed=seed)
    config = ExperimentConfig(
        rounds=60, batch_size=16, lr=0.1, eval_every=10, seed=seed
    )
    result = run_experiment(
        algorithm,
        partitions,
        validation,
        model_factory=lambda: MLP(32, [32], 10, rng=seed),
        config=config,
        network=network,
    )

    rows = [
        [
            record.round_index,
            round(record.train_loss, 4),
            round(100 * record.val_accuracy, 2),
            round(record.worker_traffic_mb, 5),
            round(record.comm_time_s, 4),
        ]
        for record in result.history
    ]
    print(
        render_table(
            ["round", "train loss", "val acc [%]", "traffic [MB]", "time [s]"],
            rows,
            title=f"SAPS-PSGD quickstart ({num_workers} workers, c=100)",
        )
    )
    print(
        f"\nFinal accuracy {100 * result.final_accuracy:.2f}% after "
        f"{result.history[-1].worker_traffic_mb:.4f} MB per worker and "
        f"{result.history[-1].comm_time_s:.3f}s of communication."
    )

    if obs_mode != "off":
        recorder = obs.recorder()
        snapshot = recorder.registry.snapshot()
        if args.metrics_out:
            with open(args.metrics_out, "w") as handle:
                json.dump(snapshot, handle, indent=2)
            print(f"\nWrote metrics snapshot to {args.metrics_out}")
        if args.trace_out and recorder.trace is not None:
            recorder.trace.write(args.trace_out)
            print(f"Wrote Chrome trace to {args.trace_out}")
        print()
        print(render_obs_report(snapshot))
        obs.stop()


if __name__ == "__main__":
    main()
