"""SAPS-PSGD on the paper's *actual* ResNet-20 (269,722 parameters).

Everything else in this repository uses scaled models for speed; this
example runs a short smoke of the real architecture from Table II —
ResNet-20 with option-A shortcuts on CIFAR-shaped synthetic data —
through the full SAPS-PSGD stack (coordinator, random masks, adaptive
matching, traffic accounting).  Pure-numpy conv is slow, so this is a
handful of rounds with small batches; expect ~a minute.

Run:  python examples/resnet20_smoke.py
"""

import time

import numpy as np

from repro.algorithms import SAPSPSGD
from repro.analysis import render_table
from repro.data import partition_iid, synthetic_cifar10
from repro.network import SimulatedNetwork, random_uniform_bandwidth
from repro.nn import ResNet20
from repro.sim import ExperimentConfig, run_experiment

NUM_WORKERS = 2
ROUNDS = 6


def main() -> None:
    model = ResNet20(rng=0)
    print(
        f"ResNet-20: {model.num_parameters():,} parameters "
        f"(paper Table II: 269,722), depth {model.depth}"
    )
    assert model.num_parameters() == 269_722

    full = synthetic_cifar10(num_samples=80, rng=0)
    train, validation = full.split(fraction=0.75, rng=0)
    partitions = partition_iid(train, NUM_WORKERS, rng=0)
    network = SimulatedNetwork(
        NUM_WORKERS, bandwidth=random_uniform_bandwidth(NUM_WORKERS, rng=0)
    )
    config = ExperimentConfig(
        rounds=ROUNDS, batch_size=4, lr=0.1, eval_every=2, seed=0
    )

    start = time.time()
    result = run_experiment(
        SAPSPSGD(compression_ratio=100.0, base_seed=0),
        partitions, validation,
        model_factory=lambda: ResNet20(rng=0),
        config=config,
        network=network,
    )
    elapsed = time.time() - start

    rows = [
        [
            record.round_index,
            round(record.train_loss, 4),
            round(100 * record.val_accuracy, 1),
            round(record.worker_traffic_mb, 4),
        ]
        for record in result.history
    ]
    print(
        render_table(
            ["round", "train loss", "val acc [%]", "traffic [MB]"],
            rows,
            title=f"SAPS-PSGD x ResNet-20 smoke ({elapsed:.1f}s wall-clock)",
        )
    )
    dense_mb = model.num_parameters() * 4 / (1024 * 1024)
    per_round = result.history[-1].worker_traffic_mb / ROUNDS
    print(
        f"\nDense model: {dense_mb:.2f} MB; measured ≈{per_round:.4f} MB per"
        f" worker per round — the 2N/c sparsified exchange, on the real"
        f" architecture."
    )


if __name__ == "__main__":
    main()
