"""Dynamic federated network: churn + drifting bandwidths + estimation.

The paper motivates SAPS-PSGD with federated workers that "may join/leave
the training randomly" over links whose speeds vary.  This example closes
the whole loop the paper sketches in footnote 3:

1. ground-truth bandwidths drift every round (geometric random walk);
2. peers run noisy speed tests and report them to the coordinator, which
   maintains per-link EWMA estimates;
3. the coordinator re-seeds Algorithm 3 from fresh estimates every
   ``REPORT_INTERVAL`` rounds;
4. workers drop out and rejoin under a Markov churn model — offline
   workers are simply excluded from the round's matching.

Compare against a fixed-ring pairing under the same churn: the ring
loses both members of every broken pair, while adaptive matching
re-pairs the survivors.

Run:  python examples/dynamic_network.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core.gossip import AdaptivePeerSelector, FixedRingSelector
from repro.network import random_uniform_bandwidth
from repro.network.estimation import BandwidthEstimator, DriftingBandwidth
from repro.network.metrics import utilized_bandwidth_per_round
from repro.sim.dynamics import MarkovChurn

NUM_WORKERS = 16
ROUNDS = 300
REPORT_INTERVAL = 25  # rounds between bandwidth re-surveys


def main() -> None:
    truth = DriftingBandwidth(
        random_uniform_bandwidth(NUM_WORKERS, rng=0), drift=0.05, rng=0
    )
    estimator = BandwidthEstimator(
        NUM_WORKERS, smoothing=0.5, measurement_noise=0.1, rng=1
    )
    churn = MarkovChurn(
        NUM_WORKERS, drop_probability=0.1, return_probability=0.4,
        min_active=4, rng=2,
    )

    estimator.survey(truth.at(0))
    adaptive = AdaptivePeerSelector(
        estimator.estimate(), connectivity_gap=20, rng=3
    )
    ring = FixedRingSelector(NUM_WORKERS)

    stats = {
        "adaptive": {"bandwidth": [], "matched": []},
        "fixed ring": {"bandwidth": [], "matched": []},
    }
    estimation_errors = []

    for t in range(ROUNDS):
        current = truth.at(t)
        active = churn.active_at(t)

        if t > 0 and t % REPORT_INTERVAL == 0:
            # Peers re-measure and report; the coordinator rebuilds its
            # selector from fresh estimates (keeping its timestamps would
            # be a further refinement; rebuilding is the simple policy).
            estimator.survey(current)
            adaptive = AdaptivePeerSelector(
                estimator.estimate(), connectivity_gap=20, rng=3 + t
            )
            estimation_errors.append(estimator.relative_error(current))

        for name, selector in [("adaptive", adaptive), ("fixed ring", ring)]:
            matching = selector.select(t, active=active).matching
            stats[name]["matched"].append(
                2 * len(matching) / max(int(active.sum()), 1)
            )
            if matching:
                stats[name]["bandwidth"].append(
                    utilized_bandwidth_per_round(matching, current)
                )

    availability = churn.availability_fraction(ROUNDS)
    print(
        f"Environment: {NUM_WORKERS} workers, {ROUNDS} rounds, "
        f"mean availability {100 * availability:.1f}%, bandwidth drift 5%/round,\n"
        f"speed tests every {REPORT_INTERVAL} rounds "
        f"(mean estimation error {100 * np.mean(estimation_errors):.1f}%)\n"
    )
    rows = [
        [
            name,
            round(float(np.mean(values["bandwidth"])), 4),
            round(100 * float(np.mean(values["matched"])), 1),
        ]
        for name, values in stats.items()
    ]
    print(
        render_table(
            ["peer selection", "mean bottleneck [MB/s]", "active workers matched [%]"],
            rows,
            title="Adaptive matching vs fixed ring under churn + drift",
        )
    )
    print(
        "\nThe fixed ring strands the partner of every offline worker and"
        "\nignores bandwidth; Algorithm 3 re-pairs survivors over fresh"
        "\nestimates — the robustness the paper's Table I 'R.' column claims."
    )


if __name__ == "__main__":
    main()
